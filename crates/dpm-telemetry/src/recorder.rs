//! The [`Recorder`]: a cloneable, thread-safe handle to one telemetry
//! scope.
//!
//! A recorder is either *enabled* (an `Arc` around mutex-protected state)
//! or *disabled* (no allocation at all); every recording method on a
//! disabled handle returns after a single `Option` check. Clones share
//! the same state, which is how one recorder threads through a governor,
//! its safety wrapper, and the simulation that drives them both.
//!
//! Parallel harnesses must not share one recorder across worker threads
//! when trace determinism matters — interleaving would depend on the
//! schedule. The contract (DESIGN.md §10) is: give each job a
//! [`Recorder::sibling`], run, then [`Recorder::absorb`] the siblings
//! into the parent **in job-index order** on the calling thread.

use crate::histogram::Histogram;
use crate::trace::{
    CounterLine, Event, GaugeLine, HistogramLine, ProfileLine, SpanLine, SpanNodeLine, TraceLine,
    TraceMeta, SCHEMA_VERSION,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

thread_local! {
    /// Active span frames on this thread: `(recorder identity, collapsed
    /// path)`. A new span's parent is the innermost frame opened by the
    /// *same* recorder on the *same* thread, so hierarchy follows the
    /// code path (deterministic across `--jobs` — each job's sibling
    /// recorder has its own identity and worker threads their own
    /// stacks) and two recorders interleaved on one thread never adopt
    /// each other's frames.
    static SPAN_FRAMES: RefCell<Vec<(usize, String)>> = const { RefCell::new(Vec::new()) };
}

/// Default event-ring capacity per recorder. Long harness runs overflow
/// it by design — the ring keeps the newest events and counts the drops
/// deterministically in [`TraceMeta::dropped`].
pub const DEFAULT_EVENT_CAPACITY: usize = 16_384;

/// Wall-clock aggregate of one span name.
#[derive(Debug, Clone, Default)]
struct SpanStats {
    count: u64,
    total: f64,
    max: f64,
}

/// Everything a recorder accumulates.
#[derive(Debug)]
struct Inner {
    source: String,
    capacity: usize,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
    /// Hierarchical span aggregates keyed by collapsed-stack path
    /// (`"sim.run;core.decide"`). Wall-clock only — surfaces in the
    /// `.profile` document as [`SpanNodeLine`]s, never in the trace.
    tree: BTreeMap<String, SpanStats>,
    events: VecDeque<Event>,
    dropped: u64,
    next_seq: u64,
    /// Per-scope sequence counters for *absorbed* events: when a child's
    /// events land under a scope, they are re-stamped from this map so
    /// that `(scope, seq)` stays unique and monotonic even when two
    /// siblings are absorbed under the same scope string. Directly
    /// recorded events (scope `""`) keep using `next_seq`.
    seq_by_scope: BTreeMap<String, u64>,
}

#[derive(Debug)]
struct Shared {
    inner: Mutex<Inner>,
}

/// A telemetry recorder handle; see the module docs for the sharing and
/// determinism contract.
#[derive(Clone)]
pub struct Recorder {
    shared: Option<Arc<Shared>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Recorder {
    /// A no-op recorder: no allocation, every method an early return.
    pub fn disabled() -> Self {
        Self { shared: None }
    }

    /// An enabled recorder with the [`DEFAULT_EVENT_CAPACITY`].
    pub fn enabled(source: &str) -> Self {
        Self::with_capacity(source, DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled recorder whose event ring keeps at most `capacity`
    /// events (at least 1).
    pub fn with_capacity(source: &str, capacity: usize) -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                inner: Mutex::new(Inner {
                    source: source.to_string(),
                    capacity: capacity.max(1),
                    counters: BTreeMap::new(),
                    gauges: BTreeMap::new(),
                    histograms: BTreeMap::new(),
                    spans: BTreeMap::new(),
                    tree: BTreeMap::new(),
                    events: VecDeque::new(),
                    dropped: 0,
                    next_seq: 0,
                    seq_by_scope: BTreeMap::new(),
                }),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A fresh, empty recorder that is enabled (with the same source and
    /// capacity) exactly when `self` is — the per-job half of the
    /// sibling/absorb determinism contract.
    pub fn sibling(&self) -> Recorder {
        match self.lock() {
            None => Recorder::disabled(),
            Some(inner) => Recorder::with_capacity(&inner.source, inner.capacity),
        }
    }

    /// A poisoned mutex only means some thread panicked mid-record; the
    /// maps stay coherent, so telemetry keeps serving (same policy as the
    /// dpm-bench `AllocCache`).
    fn lock(&self) -> Option<MutexGuard<'_, Inner>> {
        self.shared
            .as_ref()
            .map(|s| s.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Add `by` to counter `name` (created at zero).
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(mut inner) = self.lock() {
            let slot = inner.counters.entry(name.to_string()).or_insert(0);
            *slot = slot.saturating_add(by);
        }
    }

    /// Set gauge `name` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(mut inner) = self.lock() {
            inner.gauges.insert(name.to_string(), value);
        }
    }

    /// Record `value` into histogram `name`, creating it over
    /// [`crate::histogram::DEFAULT_BOUNDS`] on first use.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(mut inner) = self.lock() {
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(Histogram::with_default_bounds)
                .record(value);
        }
    }

    /// Record `value` into histogram `name`, creating it over `bounds` on
    /// first use (later calls reuse whatever bounds the name already has).
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        if let Some(mut inner) = self.lock() {
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(bounds))
                .record(value);
        }
    }

    /// Record a structured event at simulated time `time` (s).
    pub fn event(&self, name: &str, slot: Option<u64>, time: f64, fields: &[(&str, f64)]) {
        self.push_event(name, slot, time, fields, None);
    }

    /// [`Recorder::event`] with a free-form annotation.
    pub fn event_with_detail(
        &self,
        name: &str,
        slot: Option<u64>,
        time: f64,
        fields: &[(&str, f64)],
        detail: &str,
    ) {
        self.push_event(name, slot, time, fields, Some(detail));
    }

    fn push_event(
        &self,
        name: &str,
        slot: Option<u64>,
        time: f64,
        fields: &[(&str, f64)],
        detail: Option<&str>,
    ) {
        if let Some(mut inner) = self.lock() {
            let seq = inner.next_seq;
            inner.next_seq += 1;
            let event = Event {
                seq,
                scope: String::new(),
                name: name.to_string(),
                slot,
                time,
                fields: fields.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
                detail: detail.map(str::to_string),
            };
            push_capped(&mut inner, event);
        }
    }

    /// Fold an externally measured wall-clock duration (s) into span
    /// `name` — for timings produced outside a [`SpanGuard`], like the
    /// runner's per-job timings.
    pub fn record_span(&self, name: &str, wall_s: f64) {
        if let Some(mut inner) = self.lock() {
            let stats = inner.spans.entry(name.to_string()).or_default();
            stats.count += 1;
            stats.total += wall_s;
            stats.max = stats.max.max(wall_s);
        }
    }

    /// Fold an externally measured wall-clock duration (s) into the
    /// span **tree** at collapsed-stack `path` — for harness layers that
    /// time work themselves (the runner's per-job timings) but still
    /// want hierarchical attribution in the `.profile` document. The
    /// flat per-name profile is untouched; pair with
    /// [`Recorder::record_span`] when both views should see the timing.
    pub fn record_span_path(&self, path: &str, wall_s: f64) {
        if let Some(mut inner) = self.lock() {
            let stats = inner.tree.entry(path.to_string()).or_default();
            stats.count += 1;
            stats.total += wall_s;
            stats.max = stats.max.max(wall_s);
        }
    }

    /// Start timing span `name`; the elapsed wall clock is recorded when
    /// the guard drops — into the flat per-name profile *and* the span
    /// tree, where the node's path nests under the innermost span this
    /// recorder currently has open on this thread. On a disabled
    /// recorder the guard is inert and the clock is never read.
    #[must_use = "the span is timed until the guard drops"]
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(shared) = self.shared.as_ref() else {
            return SpanGuard {
                target: None,
                path: String::new(),
                framed: false,
                start: None,
            };
        };
        let id = Arc::as_ptr(shared) as usize;
        let mut framed = false;
        let path = SPAN_FRAMES.with(|frames| {
            // A failed borrow means a `Drop` re-entered `span()` on this
            // thread — degrade to an unparented frame instead of
            // panicking (the observability layer must never abort the
            // system it observes).
            match frames.try_borrow_mut() {
                Ok(mut frames) => {
                    let path = match frames.iter().rev().find(|(fid, _)| *fid == id) {
                        Some((_, parent)) => format!("{parent};{name}"),
                        None => name.to_string(),
                    };
                    frames.push((id, path.clone()));
                    framed = true;
                    path
                }
                Err(_) => name.to_string(),
            }
        });
        SpanGuard {
            target: Some((Arc::clone(shared), name.to_string())),
            path,
            framed,
            start: Some(Instant::now()),
        }
    }

    /// Merge everything `child` recorded into `self` under `scope`,
    /// draining the child. Metric names gain a `scope/` prefix; event
    /// scopes are prepended with `scope`; counters and histograms merge,
    /// gauges take the child's (newer) value. Call on the main thread in
    /// job-index order — absorption order is part of the byte layout.
    pub fn absorb(&self, scope: &str, child: &Recorder) {
        let Some(child_shared) = child.shared.as_ref() else {
            return;
        };
        if let Some(own) = self.shared.as_ref() {
            if Arc::ptr_eq(own, child_shared) {
                return;
            }
        }
        // Drain the child first (child lock, then parent lock — never
        // both ways round, so no deadlock ordering exists).
        let (counters, gauges, histograms, spans, tree, events, dropped) = {
            let mut c = child_shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            let drained = (
                std::mem::take(&mut c.counters),
                std::mem::take(&mut c.gauges),
                std::mem::take(&mut c.histograms),
                std::mem::take(&mut c.spans),
                std::mem::take(&mut c.tree),
                std::mem::take(&mut c.events),
                c.dropped,
            );
            c.dropped = 0;
            c.next_seq = 0;
            c.seq_by_scope.clear();
            drained
        };
        let Some(mut inner) = self.lock() else {
            return;
        };
        for (name, value) in counters {
            let slot = inner.counters.entry(join(scope, &name)).or_insert(0);
            *slot = slot.saturating_add(value);
        }
        for (name, value) in gauges {
            inner.gauges.insert(join(scope, &name), value);
        }
        for (name, h) in histograms {
            match inner.histograms.entry(join(scope, &name)) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h);
                }
            }
        }
        for (name, s) in spans {
            let stats = inner.spans.entry(join(scope, &name)).or_default();
            stats.count += s.count;
            stats.total += s.total;
            stats.max = stats.max.max(s.max);
        }
        for (path, s) in tree {
            // The scope prefixes the path's *root* frame — `join` only
            // touches the head of the string, so `"a;b"` under scope
            // `"s"` becomes `"s/a;b"`, mirroring the flat span names.
            let stats = inner.tree.entry(join(scope, &path)).or_default();
            stats.count += s.count;
            stats.total += s.total;
            stats.max = stats.max.max(s.max);
        }
        for mut event in events {
            event.scope = join(scope, &event.scope);
            // Re-stamp the sequence from the parent's per-scope counter:
            // the child numbered from 0, and a second sibling absorbed
            // under the same scope would otherwise restart the numbering
            // and interleave duplicate `(scope, seq)` pairs.
            let seq = {
                let next = inner.seq_by_scope.entry(event.scope.clone()).or_insert(0);
                let seq = *next;
                *next += 1;
                seq
            };
            event.seq = seq;
            push_capped(&mut inner, event);
        }
        inner.dropped += dropped;
    }

    /// The deterministic trace: meta, events in record/absorb order, then
    /// counters, gauges, histograms and span counts in sorted name order.
    /// Empty for a disabled recorder.
    pub fn snapshot(&self) -> Vec<TraceLine> {
        let Some(inner) = self.lock() else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(
            1 + inner.events.len()
                + inner.counters.len()
                + inner.gauges.len()
                + inner.histograms.len()
                + inner.spans.len(),
        );
        out.push(TraceLine::Meta(TraceMeta {
            schema: SCHEMA_VERSION,
            source: inner.source.clone(),
            events: inner.events.len() as u64,
            dropped: inner.dropped,
        }));
        out.extend(inner.events.iter().cloned().map(TraceLine::Event));
        out.extend(inner.counters.iter().map(|(name, &value)| {
            TraceLine::Counter(CounterLine {
                name: name.clone(),
                value,
            })
        }));
        out.extend(inner.gauges.iter().map(|(name, &value)| {
            TraceLine::Gauge(GaugeLine {
                name: name.clone(),
                value,
            })
        }));
        out.extend(inner.histograms.iter().map(|(name, h)| {
            TraceLine::Histogram(HistogramLine {
                name: name.clone(),
                bounds: h.bounds().to_vec(),
                counts: h.counts().to_vec(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
            })
        }));
        out.extend(inner.spans.iter().map(|(name, s)| {
            TraceLine::Span(SpanLine {
                name: name.clone(),
                count: s.count,
            })
        }));
        out
    }

    /// The deterministic trace as JSONL (one [`TraceLine`] per line).
    /// Empty for a disabled recorder.
    pub fn to_jsonl(&self) -> String {
        lines_to_jsonl(self.snapshot().iter())
    }

    /// The wall-clock span profile, sorted by name — the explicitly
    /// non-deterministic sibling document of the trace.
    pub fn profile_lines(&self) -> Vec<ProfileLine> {
        let Some(inner) = self.lock() else {
            return Vec::new();
        };
        inner
            .spans
            .iter()
            .map(|(name, s)| ProfileLine {
                name: name.clone(),
                count: s.count,
                total_s: s.total,
                mean_s: if s.count == 0 {
                    0.0
                } else {
                    s.total / s.count as f64
                },
                max_s: s.max,
            })
            .collect()
    }

    /// The hierarchical span tree, sorted by collapsed-stack path — the
    /// second line kind of the profile document. Empty when no
    /// [`SpanGuard`] or [`Recorder::record_span_path`] timing landed.
    pub fn span_node_lines(&self) -> Vec<SpanNodeLine> {
        let Some(inner) = self.lock() else {
            return Vec::new();
        };
        inner
            .tree
            .iter()
            .map(|(path, s)| SpanNodeLine {
                path: path.clone(),
                count: s.count,
                total_s: s.total,
                max_s: s.max,
            })
            .collect()
    }

    /// The wall-clock profile as JSONL: flat [`ProfileLine`]s first,
    /// then the span-tree [`SpanNodeLine`]s (parse both back with
    /// [`crate::trace::parse_profile_doc`]).
    pub fn profile_jsonl(&self) -> String {
        let mut out = lines_to_jsonl(self.profile_lines().iter());
        out.push_str(&lines_to_jsonl(self.span_node_lines().iter()));
        out
    }

    /// Drain-free tail cursor over the event ring for live streaming:
    /// returns every event whose **absolute** index (counting evicted
    /// events) is `>= cursor`, plus the cursor to pass next time. The
    /// ring is untouched, so `snapshot()` at close still serializes the
    /// complete document. When the ring overran the cursor (events were
    /// evicted before being streamed), the skipped ones are simply gone —
    /// exactly the batch `dropped` semantics. Disabled recorders return
    /// `(cursor, [])`.
    pub fn events_from(&self, cursor: u64) -> (u64, Vec<Event>) {
        let Some(inner) = self.lock() else {
            return (cursor, Vec::new());
        };
        // The event at ring position i has absolute index dropped + i.
        let start = cursor.saturating_sub(inner.dropped) as usize;
        let events: Vec<Event> = inner.events.iter().skip(start).cloned().collect();
        (inner.dropped + inner.events.len() as u64, events)
    }

    /// The current gauge map as serialized lines, in sorted name order —
    /// how a live session streams its config gauges ahead of the first
    /// event so an online auditor can check windows as slots arrive.
    pub fn gauge_lines(&self) -> Vec<GaugeLine> {
        let Some(inner) = self.lock() else {
            return Vec::new();
        };
        inner
            .gauges
            .iter()
            .map(|(name, &value)| GaugeLine {
                name: name.clone(),
                value,
            })
            .collect()
    }

    /// Current value of counter `name` (0 when absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock()
            .and_then(|inner| inner.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Events currently held in the ring.
    pub fn event_count(&self) -> usize {
        self.lock().map_or(0, |inner| inner.events.len())
    }

    /// Events dropped at the ring capacity so far.
    pub fn dropped(&self) -> u64 {
        self.lock().map_or(0, |inner| inner.dropped)
    }

    /// Human-readable digest for stderr: top counters, histogram
    /// quantiles, and the span profile under an explicit wall-clock
    /// banner. The deterministic trace is untouched by this.
    pub fn summary(&self) -> String {
        let Some(inner) = self.lock() else {
            return "telemetry: disabled".to_string();
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry[{}]: {} events ({} dropped), {} counters, {} gauges, {} histograms, {} spans",
            inner.source,
            inner.events.len(),
            inner.dropped,
            inner.counters.len(),
            inner.gauges.len(),
            inner.histograms.len(),
            inner.spans.len(),
        );
        if !inner.counters.is_empty() {
            let mut top: Vec<(&String, u64)> =
                inner.counters.iter().map(|(k, &v)| (k, v)).collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            let _ = writeln!(out, "  top counters:");
            for (name, value) in top.into_iter().take(10) {
                let _ = writeln!(out, "    {value:>12}  {name}");
            }
        }
        if !inner.histograms.is_empty() {
            let _ = writeln!(out, "  histograms (count / p50 / p90 / max):");
            for (name, h) in &inner.histograms {
                let _ = writeln!(
                    out,
                    "    {:>8} / {:>9.3} / {:>9.3} / {:>9.3}  {name}",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.9),
                    h.max(),
                );
            }
        }
        if !inner.spans.is_empty() {
            let _ = writeln!(
                out,
                "  span profile (WALL CLOCK — non-deterministic, excluded from the trace):"
            );
            for (name, s) in &inner.spans {
                let mean = if s.count == 0 {
                    0.0
                } else {
                    s.total / s.count as f64
                };
                let _ = writeln!(
                    out,
                    "    {:>8}x  total {:>9.4}s  mean {:>9.6}s  max {:>9.6}s  {name}",
                    s.count, s.total, mean, s.max,
                );
            }
        }
        out
    }
}

/// Push an event into the ring, evicting the oldest at capacity.
fn push_capped(inner: &mut Inner, event: Event) {
    if inner.events.len() >= inner.capacity {
        inner.events.pop_front();
        inner.dropped += 1;
    }
    inner.events.push_back(event);
}

/// Prefix `name` with `scope/`; either side may be empty.
fn join(scope: &str, name: &str) -> String {
    if scope.is_empty() {
        name.to_string()
    } else if name.is_empty() {
        scope.to_string()
    } else {
        format!("{scope}/{name}")
    }
}

fn lines_to_jsonl<'a, L: serde::Serialize + 'a>(lines: impl Iterator<Item = &'a L>) -> String {
    let mut out = String::new();
    for line in lines {
        // The line types serialize infallibly; a hypothetical failure
        // drops the line rather than panicking in a telemetry path.
        if let Ok(json) = serde_json::to_string(line) {
            out.push_str(&json);
            out.push('\n');
        }
    }
    out
}

/// RAII wall-clock timer returned by [`Recorder::span`]; records on drop
/// into both the flat per-name profile and the hierarchical span tree.
#[must_use = "the span is timed until the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    target: Option<(Arc<Shared>, String)>,
    /// Collapsed-stack path computed at open time.
    path: String,
    /// Whether a frame was pushed onto this thread's stack (and must be
    /// popped on drop).
    framed: bool,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some((shared, name)), Some(start)) = (self.target.take(), self.start.take()) {
            let wall = start.elapsed().as_secs_f64();
            if self.framed {
                let id = Arc::as_ptr(&shared) as usize;
                SPAN_FRAMES.with(|frames| {
                    if let Ok(mut frames) = frames.try_borrow_mut() {
                        // Usually the top frame; a guard dropped out of
                        // order still removes *its own* frame, not a
                        // sibling's.
                        if let Some(pos) = frames
                            .iter()
                            .rposition(|(fid, p)| *fid == id && *p == self.path)
                        {
                            frames.remove(pos);
                        }
                    }
                });
            }
            let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            let stats = inner.spans.entry(name).or_default();
            stats.count += 1;
            stats.total += wall;
            stats.max = stats.max.max(wall);
            let node = inner
                .tree
                .entry(std::mem::take(&mut self.path))
                .or_default();
            node.count += 1;
            node.total += wall;
            node.max = node.max.max(wall);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert_and_empty() {
        let rec = Recorder::disabled();
        rec.incr("a", 1);
        rec.gauge("b", 2.0);
        rec.observe("c", 3.0);
        rec.event("d", None, 0.0, &[]);
        rec.record_span("e", 0.5);
        drop(rec.span("f"));
        assert!(!rec.is_enabled());
        assert_eq!(rec.to_jsonl(), "");
        assert!(rec.snapshot().is_empty());
        assert!(rec.profile_lines().is_empty());
        assert_eq!(rec.counter("a"), 0);
        assert_eq!(rec.summary(), "telemetry: disabled");
        assert!(!rec.sibling().is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let rec = Recorder::enabled("t");
        let clone = rec.clone();
        clone.incr("hits", 2);
        rec.incr("hits", 3);
        assert_eq!(rec.counter("hits"), 5);
    }

    #[test]
    fn event_ring_is_bounded_with_deterministic_drops() {
        let rec = Recorder::with_capacity("t", 3);
        for i in 0..5u64 {
            rec.event("e", Some(i), i as f64, &[]);
        }
        assert_eq!(rec.event_count(), 3);
        assert_eq!(rec.dropped(), 2);
        let lines = rec.snapshot();
        // Meta reports the retained/dropped split.
        match &lines[0] {
            TraceLine::Meta(m) => {
                assert_eq!(m.events, 3);
                assert_eq!(m.dropped, 2);
                assert_eq!(m.schema, SCHEMA_VERSION);
            }
            other => unreachable!("first line must be meta, got {other:?}"),
        }
        // The oldest events were evicted; seq numbers stay monotonic.
        let seqs: Vec<u64> = lines
            .iter()
            .filter_map(|l| match l {
                TraceLine::Event(e) => Some(e.seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn absorb_prefixes_scopes_and_merges_metrics() {
        let root = Recorder::enabled("root");
        root.incr("shared", 1);
        let child = root.sibling();
        child.incr("shared", 10);
        child.gauge("level", 4.5);
        child.observe("iters", 3.0);
        child.record_span("job", 0.25);
        child.event("sim.slot", Some(0), 0.0, &[("battery_j", 8.0)]);

        let grandchild = child.sibling();
        grandchild.event("core.replan", Some(1), 4.8, &[]);
        child.absorb("proposed", &grandchild);
        root.absorb("table1/0", &child);

        assert_eq!(root.counter("shared"), 1);
        assert_eq!(root.counter("table1/0/shared"), 10);
        let jsonl = root.to_jsonl();
        assert!(jsonl.contains("\"table1/0/level\""), "{jsonl}");
        assert!(jsonl.contains("\"table1/0/iters\""), "{jsonl}");
        assert!(jsonl.contains("\"table1/0/job\""), "{jsonl}");
        // Event scopes compose through nested absorption.
        let scopes: Vec<String> = root
            .snapshot()
            .into_iter()
            .filter_map(|l| match l {
                TraceLine::Event(e) => Some(e.scope),
                _ => None,
            })
            .collect();
        assert_eq!(scopes, vec!["table1/0", "table1/0/proposed"]);
        // The child was drained.
        assert_eq!(child.event_count(), 0);
        assert_eq!(child.counter("shared"), 0);
    }

    #[test]
    fn siblings_absorbed_under_the_same_scope_do_not_interleave_seqs() {
        let root = Recorder::enabled("root");
        let a = root.sibling();
        let b = root.sibling();
        for i in 0..3u64 {
            a.event("e", Some(i), i as f64, &[("side", 0.0)]);
            b.event("e", Some(i), i as f64, &[("side", 1.0)]);
        }
        // Both children land under the *same* scope string — a collision
        // the per-scope renumbering must absorb without duplicate or
        // non-monotonic `(scope, seq)` pairs.
        root.absorb("shared", &a);
        root.absorb("shared", &b);
        let seqs: Vec<u64> = root
            .snapshot()
            .into_iter()
            .filter_map(|l| match l {
                TraceLine::Event(e) => {
                    assert_eq!(e.scope, "shared");
                    Some(e.seq)
                }
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn colliding_scopes_keep_distinct_nested_paths_separate() {
        let root = Recorder::enabled("root");
        let a = root.sibling();
        let inner_a = a.sibling();
        inner_a.event("nested", None, 0.0, &[]);
        a.event("direct", None, 0.0, &[]);
        a.absorb("leaf", &inner_a);
        let b = root.sibling();
        b.event("direct", None, 1.0, &[]);
        root.absorb("job", &a);
        root.absorb("job", &b);
        // Scope "job" holds a's direct event then b's (seqs 0, 1);
        // "job/leaf" numbers independently from 0.
        let got: Vec<(String, u64, String)> = root
            .snapshot()
            .into_iter()
            .filter_map(|l| match l {
                TraceLine::Event(e) => Some((e.scope, e.seq, e.name)),
                _ => None,
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("job".into(), 0, "direct".into()),
                ("job/leaf".into(), 0, "nested".into()),
                ("job".into(), 1, "direct".into()),
            ]
        );
    }

    #[test]
    fn absorb_into_self_is_a_no_op() {
        let rec = Recorder::enabled("t");
        rec.incr("n", 1);
        let alias = rec.clone();
        rec.absorb("loop", &alias);
        assert_eq!(rec.counter("n"), 1);
        assert_eq!(rec.counter("loop/n"), 0);
    }

    #[test]
    fn events_from_streams_the_tail_without_draining() {
        let rec = Recorder::enabled("t");
        rec.event("a", Some(0), 0.0, &[]);
        rec.event("b", Some(1), 1.0, &[]);
        let (cursor, tail) = rec.events_from(0);
        assert_eq!(cursor, 2);
        assert_eq!(
            tail.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        // Nothing new: same cursor, empty tail.
        let (cursor, tail) = rec.events_from(cursor);
        assert_eq!((cursor, tail.len()), (2, 0));
        rec.event("c", Some(2), 2.0, &[]);
        let (cursor, tail) = rec.events_from(cursor);
        assert_eq!((cursor, tail.len()), (3, 1));
        assert_eq!(tail[0].name, "c");
        // The ring still serializes in full.
        assert_eq!(rec.event_count(), 3);
    }

    #[test]
    fn events_from_skips_evicted_events_like_dropped() {
        let rec = Recorder::with_capacity("t", 2);
        for i in 0..5u64 {
            rec.event("e", Some(i), i as f64, &[]);
        }
        // Cursor 0 but three events were evicted: only the retained tail
        // comes back, and the cursor lands past the whole stream.
        let (cursor, tail) = rec.events_from(0);
        assert_eq!(cursor, 5);
        let slots: Vec<Option<u64>> = tail.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![Some(3), Some(4)]);
        let disabled = Recorder::disabled();
        assert_eq!(disabled.events_from(7), (7, Vec::new()));
    }

    #[test]
    fn gauge_lines_snapshot_the_current_map_in_sorted_order() {
        let rec = Recorder::enabled("t");
        rec.gauge("z", 1.0);
        rec.gauge("a", 2.0);
        let names: Vec<String> = rec.gauge_lines().into_iter().map(|g| g.name).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert!(Recorder::disabled().gauge_lines().is_empty());
    }

    #[test]
    fn jsonl_round_trips_line_by_line() {
        let rec = Recorder::enabled("rt");
        rec.incr("calls", 7);
        rec.gauge("battery_j", 6.25);
        rec.observe_with("horizon", &[1.0, 2.0, 4.0, 8.0], 3.0);
        rec.record_span("decide", 1e-6);
        rec.event_with_detail(
            "sim.fault",
            None,
            9.6,
            &[("factor", 0.0)],
            "ChargingDropout",
        );
        let jsonl = rec.to_jsonl();
        for line in jsonl.lines() {
            let parsed: TraceLine = serde_json::from_str(line).expect(line);
            assert_eq!(serde_json::to_string(&parsed).unwrap(), line);
        }
        // Spans surface only their deterministic count in the trace …
        assert!(jsonl.contains("\"Span\""));
        assert!(!jsonl.contains("total_s"), "{jsonl}");
        // … while the profile carries the wall clock.
        let profile = rec.profile_jsonl();
        assert!(profile.contains("total_s"), "{profile}");
    }

    #[test]
    fn identical_recordings_serialize_identically() {
        let record = |rec: &Recorder| {
            rec.incr("z.last", 1);
            rec.incr("a.first", 2);
            rec.gauge("g", 0.1 + 0.2); // deterministic f64 bits
            rec.observe("h", 42.0);
            rec.event("e", Some(3), 14.4, &[("x", -0.0)]);
        };
        let a = Recorder::enabled("same");
        let b = Recorder::enabled("same");
        record(&a);
        record(&b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn span_guard_times_on_drop() {
        let rec = Recorder::enabled("t");
        {
            let _g = rec.span("work");
        }
        let profile = rec.profile_lines();
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].name, "work");
        assert_eq!(profile[0].count, 1);
        assert!(profile[0].total_s >= 0.0);
    }

    #[test]
    fn nested_spans_build_collapsed_stack_paths() {
        let rec = Recorder::enabled("t");
        {
            let _outer = rec.span("sim.run");
            {
                let _mid = rec.span("core.decide");
                let _inner = rec.span("core.replan");
            }
            let _mid2 = rec.span("core.decide");
        }
        {
            let _solo = rec.span("core.decide");
        }
        let nodes = rec.span_node_lines();
        let paths: Vec<(&str, u64)> = nodes.iter().map(|n| (n.path.as_str(), n.count)).collect();
        assert_eq!(
            paths,
            vec![
                ("core.decide", 1),
                ("sim.run", 1),
                ("sim.run;core.decide", 2),
                ("sim.run;core.decide;core.replan", 1),
            ]
        );
        // The flat profile is untouched by the hierarchy: leaf names only.
        let flat: Vec<String> = rec.profile_lines().into_iter().map(|p| p.name).collect();
        assert_eq!(flat, vec!["core.decide", "core.replan", "sim.run"]);
    }

    #[test]
    fn interleaved_recorders_do_not_adopt_each_others_frames() {
        let a = Recorder::enabled("a");
        let b = Recorder::enabled("b");
        let _outer_a = a.span("outer");
        {
            let _inner_b = b.span("inner");
        }
        drop(_outer_a);
        assert_eq!(b.span_node_lines()[0].path, "inner");
        assert_eq!(a.span_node_lines()[0].path, "outer");
    }

    #[test]
    fn absorb_prefixes_tree_paths_at_the_root_frame() {
        let root = Recorder::enabled("root");
        let child = root.sibling();
        {
            let _outer = child.span("job");
            let _inner = child.span("step");
        }
        child.record_span_path("job;ext", 0.125);
        root.absorb("table1/0", &child);
        let paths: Vec<String> = root.span_node_lines().into_iter().map(|n| n.path).collect();
        assert_eq!(
            paths,
            vec!["table1/0/job", "table1/0/job;ext", "table1/0/job;step"]
        );
        assert!(child.span_node_lines().is_empty(), "child was drained");
    }

    #[test]
    fn record_span_path_feeds_the_tree_only() {
        let rec = Recorder::enabled("t");
        rec.record_span_path("run;job", 0.5);
        rec.record_span_path("run;job", 0.25);
        assert!(rec.profile_lines().is_empty());
        let nodes = rec.span_node_lines();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].path, "run;job");
        assert_eq!(nodes[0].count, 2);
        assert!((nodes[0].total_s - 0.75).abs() < 1e-12);
        assert!((nodes[0].max_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn profile_document_round_trips_both_line_kinds() {
        let rec = Recorder::enabled("t");
        {
            let _outer = rec.span("run");
            let _inner = rec.span("step");
        }
        let doc = rec.profile_jsonl();
        let (flat, tree) = crate::trace::parse_profile_doc(&doc).expect("parses");
        assert_eq!(flat.len(), 2);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[1].path, "run;step");
        // The trace still carries only the deterministic span counts.
        assert!(!rec.to_jsonl().contains("total_s"));
    }

    #[test]
    fn summary_mentions_the_sections() {
        let rec = Recorder::enabled("sum");
        rec.incr("calls", 3);
        rec.observe("iters", 5.0);
        rec.record_span("job", 0.01);
        let s = rec.summary();
        assert!(s.contains("telemetry[sum]"), "{s}");
        assert!(s.contains("top counters"), "{s}");
        assert!(s.contains("histograms"), "{s}");
        assert!(s.contains("WALL CLOCK"), "{s}");
    }
}
