//! Fleet campaigns: shard a struct-of-arrays board population across the
//! scoped-thread runner.
//!
//! The `campaign` binary's `--fleet N` mode is a thin shell over this
//! module. A fleet of `N` boards is cut into fixed-size shards of
//! [`SHARD_BOARDS`] boards each — the shard layout depends only on `N`,
//! never on `--jobs` — and each shard runs one
//! [`FleetState`](dpm_sim::fleet::FleetState) through
//! [`crate::runner::run_indexed`]. Because board specs are
//! shard-independent (see [`dpm_workloads::fleet`]), shard `i` computes
//! the same boards bit-for-bit whether it runs alone or beside fifteen
//! siblings, and results are collected by shard index, so the CSV and the
//! telemetry trace are **byte-identical for any worker count** — the same
//! contract as [`crate::campaign`] and [`crate::sweeps`].
//!
//! Every board follows the paper's own open-loop plan: the §4.1 initial
//! allocation is pushed through the §4.2 parameter scheduler once, and
//! the resulting per-slot operating points become the fleet's cycled
//! allocation table. A hysteretic [`ShedGuard`](dpm_sim::fleet::ShedGuard)
//! stands in for the per-board safety layer, so the shed-event census
//! measures how often boards have to shed workers to stay alive.
//!
//! Per shard, the sibling recorder carries `fleet.*` counters (boards,
//! survivors, sheds, jobs, drops, board-slots), population histograms of
//! the battery floor and final charge (fixed bounds derived from the
//! battery window, so shard histograms merge bucket-exactly), and
//! undersupply/survival gauges — all absorbed under `fleet/{shard}` in
//! shard order. `dpm-analyze fleet` reads them back into a population
//! summary.

use crate::campaign::sanitize;
use crate::experiments::initial_allocation;
use crate::runner::{self, RunStats};
use dpm_core::params::{OperatingPoint, ParameterScheduler};
use dpm_core::platform::{BatteryLimits, Platform};
use dpm_core::units::seconds;
use dpm_sim::fleet::{FleetConfig, FleetReport, FleetState, ShedGuard};
use dpm_sim::prelude::*;
use dpm_telemetry::Recorder;
use dpm_workloads::{scenarios, FleetScenarioConfig, Scenario};
use std::fmt::Write as _;
use std::sync::Arc;

/// Boards per shard. Fixed — the shard layout is a function of the fleet
/// size alone, which is what keeps output byte-identical across `--jobs`.
/// 256 boards keep a shard's state (~50 f64/board) comfortably inside L2
/// while giving the runner enough shards to balance.
pub const SHARD_BOARDS: usize = 256;

/// Default master seed for the population generator.
pub const DEFAULT_MASTER_SEED: u64 = 1;

/// Histogram buckets for the battery-floor/final-charge population
/// histograms.
pub const BATTERY_BUCKETS: usize = 32;

/// Histogram bounds spanning the battery window in [`BATTERY_BUCKETS`]
/// equal steps. Derived from the platform alone, so every shard observes
/// into identical buckets and merged histograms stay bucket-exact.
pub fn battery_bounds(limits: &BatteryLimits) -> Vec<f64> {
    let c_min = limits.c_min.value();
    let window = limits.window().value();
    (1..=BATTERY_BUCKETS)
        .map(|i| c_min + window * i as f64 / BATTERY_BUCKETS as f64)
        .collect()
}

/// One prepared shard: everything a worker needs, read-only.
struct FleetShard {
    index: usize,
    boards: std::ops::Range<usize>,
    master_seed: u64,
    periods: usize,
    platform: Arc<Platform>,
    scenario: Arc<Scenario>,
    allocation: Arc<Vec<OperatingPoint>>,
    population: FleetScenarioConfig,
    guard: ShedGuard,
    bounds: Arc<Vec<f64>>,
}

/// Scalar results of one shard, in CSV column order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ShardSummary {
    boards: usize,
    board_slots: u64,
    survived: usize,
    sheds: u64,
    jobs_done: u64,
    dropped: u64,
    undersupplied: f64,
    min_battery_p10: f64,
    min_battery_p50: f64,
}

/// The assembled result of a fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The CSV matrix (one row per shard plus a `total` row), identical
    /// for every worker count.
    pub csv: String,
    /// Runner statistics (wall clock, per-shard timings).
    pub stats: RunStats,
    /// Number of shards that reported an error row.
    pub failures: usize,
    /// Boards simulated (excluding failed shards).
    pub boards: usize,
    /// Board-slots advanced (the throughput numerator).
    pub board_slots: u64,
    /// Boards that survived.
    pub survived: usize,
}

impl FleetOutcome {
    /// Population survival fraction (1.0 for an empty fleet).
    pub fn survival_fraction(&self) -> f64 {
        if self.boards == 0 {
            1.0
        } else {
            self.survived as f64 / self.boards as f64
        }
    }
}

/// Run a fleet campaign of `boards` boards for `periods` charging periods
/// on up to `jobs` worker threads.
///
/// # Errors
/// Returns [`SimError`] only for *setup* failures (infeasible scenario).
/// Per-shard failures do not abort the run; they appear as error rows and
/// in [`FleetOutcome::failures`].
pub fn run(
    boards: usize,
    jobs: usize,
    periods: usize,
    master_seed: u64,
) -> Result<FleetOutcome, SimError> {
    run_with(boards, jobs, periods, master_seed, &Recorder::disabled())
}

/// [`run`] with telemetry: each shard records into its own sibling
/// recorder, absorbed into `telemetry` in shard order as `fleet/{shard}`
/// — byte-identical for any worker count.
///
/// # Errors
/// Same contract as [`run`].
pub fn run_with(
    boards: usize,
    jobs: usize,
    periods: usize,
    master_seed: u64,
    telemetry: &Recorder,
) -> Result<FleetOutcome, SimError> {
    let platform = Arc::new(Platform::pama());
    let scenario = Arc::new(scenarios::scenario_one());
    let slots = scenario.charging.len();
    let horizon = seconds(periods as f64 * slots as f64 * platform.tau.value());

    // The paper's open-loop plan, computed once for the whole fleet: §4.1
    // initial allocation → §4.2 discrete operating points, one per slot.
    let alloc = initial_allocation(&platform, &scenario)?;
    let schedule = ParameterScheduler::new(platform.as_ref().clone())?
        .with_telemetry(telemetry.clone())
        .plan(
            &alloc.allocation,
            &scenario.charging,
            scenario.initial_charge,
        )?;
    let allocation: Arc<Vec<OperatingPoint>> =
        Arc::new(schedule.slots.iter().map(|s| s.point).collect());
    if allocation.is_empty() {
        return Err(SimError::InvalidConfig(
            "parameter scheduler produced an empty allocation table".into(),
        ));
    }

    // Hysteretic per-board load shedding: shed below 15 % of the window,
    // recover above 30 %, down to a bare board at worst.
    let limits = platform.battery;
    let guard = ShedGuard {
        shed_below: limits.c_min + limits.window() * 0.15,
        recover_above: limits.c_min + limits.window() * 0.30,
        max_degradation: platform.workers() as u32,
    };
    let bounds = Arc::new(battery_bounds(&limits));
    let population = FleetScenarioConfig::standard(horizon);

    let shard_count = boards.div_ceil(SHARD_BOARDS);
    let mut shards = Vec::with_capacity(shard_count);
    for i in 0..shard_count {
        shards.push(FleetShard {
            index: i,
            boards: i * SHARD_BOARDS..boards.min((i + 1) * SHARD_BOARDS),
            master_seed,
            periods,
            platform: Arc::clone(&platform),
            scenario: Arc::clone(&scenario),
            allocation: Arc::clone(&allocation),
            population,
            guard,
            bounds: Arc::clone(&bounds),
        });
    }

    let siblings: Vec<Recorder> = shards.iter().map(|_| telemetry.sibling()).collect();
    let (results, stats) =
        runner::run_indexed(&shards, jobs, |i, shard| run_shard(shard, &siblings[i]));
    for (shard, sibling) in shards.iter().zip(&siblings) {
        telemetry.absorb(&format!("fleet/{}", shard.index), sibling);
    }
    stats.record_into(telemetry, "fleet");

    let mut csv = String::from(
        "shard,boards,survived,sheds,jobs_done,dropped,undersupplied_j,\
         min_battery_p10_j,min_battery_p50_j\n",
    );
    let mut failures = 0usize;
    let mut total = ShardSummary {
        boards: 0,
        board_slots: 0,
        survived: 0,
        sheds: 0,
        jobs_done: 0,
        dropped: 0,
        undersupplied: 0.0,
        min_battery_p10: 0.0,
        min_battery_p50: 0.0,
    };
    for (shard, slot) in shards.iter().zip(results) {
        let outcome = match slot {
            Ok(r) => r,
            Err(panic) => Err(SimError::WorkerPanic(panic.to_string())),
        };
        match outcome {
            Ok(s) => {
                total.boards += s.boards;
                total.board_slots += s.board_slots;
                total.survived += s.survived;
                total.sheds += s.sheds;
                total.jobs_done += s.jobs_done;
                total.dropped += s.dropped;
                total.undersupplied += s.undersupplied;
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{:.4},{:.4},{:.4}",
                    shard.index,
                    s.boards,
                    s.survived,
                    s.sheds,
                    s.jobs_done,
                    s.dropped,
                    s.undersupplied,
                    s.min_battery_p10,
                    s.min_battery_p50,
                );
            }
            Err(e) => {
                failures += 1;
                let _ = writeln!(
                    csv,
                    "{},error,{},,,,,,",
                    shard.index,
                    sanitize(&e.to_string()),
                );
            }
        }
    }
    let _ = writeln!(
        csv,
        "total,{},{},{},{},{},{:.4},,",
        total.boards,
        total.survived,
        total.sheds,
        total.jobs_done,
        total.dropped,
        total.undersupplied,
    );

    Ok(FleetOutcome {
        csv,
        stats,
        failures,
        boards: total.boards,
        board_slots: total.board_slots,
        survived: total.survived,
    })
}

/// Run one shard and fold its report into the shard's recorder.
fn run_shard(shard: &FleetShard, telemetry: &Recorder) -> Result<ShardSummary, SimError> {
    let platform = shard.platform.as_ref();
    let scenario = shard.scenario.as_ref();
    let specs = dpm_workloads::fleet_specs(
        scenario,
        shard.master_seed,
        shard.boards.clone(),
        &shard.population,
    );

    let mut config = FleetConfig::new(
        Arc::clone(&shard.platform),
        scenario.charging.clone(),
        scenario.event_rates(platform),
        shard.allocation.as_ref().clone(),
    );
    config.periods = shard.periods;
    config.slots_per_period = scenario.charging.len();
    config.substeps = 8;
    config.guard = Some(shard.guard);
    config.trace = false;

    let report = FleetState::new(config, &specs)?.run();
    record_report(telemetry, &report, &shard.bounds);
    Ok(summarize(&report))
}

/// Emit the `fleet.*` schema-v1 telemetry for one shard's report.
fn record_report(telemetry: &Recorder, report: &FleetReport, bounds: &[f64]) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.incr("fleet.boards", report.boards as u64);
    telemetry.incr("fleet.board_slots", report.board_slots);
    telemetry.incr("fleet.survived", report.survived_count() as u64);
    telemetry.incr("fleet.sheds", report.total_sheds());
    telemetry.incr("fleet.jobs_done", report.jobs_done.iter().sum());
    telemetry.incr("fleet.jobs_dropped", report.dropped.iter().sum());
    for b in 0..report.boards {
        telemetry.observe_with("fleet.min_battery_j", bounds, report.min_battery[b]);
        telemetry.observe_with("fleet.final_battery_j", bounds, report.final_battery[b]);
    }
    telemetry.gauge(
        "fleet.undersupplied_j",
        report.undersupplied.iter().sum::<f64>(),
    );
    telemetry.gauge("fleet.survival_fraction", report.survival_fraction());
}

/// Collapse a shard report into its CSV row.
fn summarize(report: &FleetReport) -> ShardSummary {
    let mut sorted = report.min_battery.clone();
    sorted.sort_by(f64::total_cmp);
    ShardSummary {
        boards: report.boards,
        board_slots: report.board_slots,
        survived: report.survived_count(),
        sheds: report.total_sheds(),
        jobs_done: report.jobs_done.iter().sum(),
        dropped: report.dropped.iter().sum(),
        undersupplied: report.undersupplied.iter().sum(),
        min_battery_p10: percentile(&sorted, 0.10),
        min_battery_p50: percentile(&sorted, 0.50),
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0.0 when empty)
/// — the same convention as the telemetry histogram quantile.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_byte_identical_across_worker_counts() {
        let serial = run(300, 1, 1, DEFAULT_MASTER_SEED).unwrap();
        let parallel = run(300, 4, 1, DEFAULT_MASTER_SEED).unwrap();
        assert_eq!(serial.csv, parallel.csv);
        assert_eq!(serial.failures, 0);
        assert_eq!(parallel.failures, 0);
        // 300 boards → shards of 256 + 44.
        assert_eq!(serial.stats.jobs, 2);
        assert_eq!(serial.boards, 300);
        assert_eq!(serial.board_slots, 300 * 12);
    }

    #[test]
    fn fleet_trace_is_byte_identical_across_worker_counts() {
        let tel_a = Recorder::enabled("fleet-test");
        let tel_b = Recorder::enabled("fleet-test");
        run_with(300, 1, 1, 7, &tel_a).unwrap();
        run_with(300, 3, 1, 7, &tel_b).unwrap();
        let a = tel_a.to_jsonl();
        assert!(!a.is_empty());
        assert_eq!(a, tel_b.to_jsonl());
        assert!(a.contains("fleet.min_battery_j"));
        assert!(a.contains("fleet.board_slots"));
    }

    #[test]
    fn master_seed_changes_the_outcome() {
        let a = run(256, 2, 1, 1).unwrap();
        let b = run(256, 2, 1, 2).unwrap();
        assert_ne!(a.csv, b.csv);
    }

    #[test]
    fn empty_fleet_reports_cleanly() {
        let outcome = run(0, 4, 1, 1).unwrap();
        assert_eq!(outcome.boards, 0);
        assert_eq!(outcome.failures, 0);
        assert_eq!(outcome.survival_fraction(), 1.0);
        assert!(outcome.csv.ends_with("total,0,0,0,0,0,0.0000,,\n"));
    }

    #[test]
    fn battery_bounds_span_the_window() {
        let limits = Platform::pama().battery;
        let bounds = battery_bounds(&limits);
        assert_eq!(bounds.len(), BATTERY_BUCKETS);
        assert!(bounds[0] > limits.c_min.value());
        let last = bounds[bounds.len() - 1];
        assert!((last - limits.c_max.value()).abs() < 1e-12);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.10), 1.0);
        assert_eq!(percentile(&xs, 0.50), 2.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn survivors_and_sheds_are_plausible() {
        let outcome = run(256, 2, 2, DEFAULT_MASTER_SEED).unwrap();
        assert_eq!(outcome.failures, 0);
        assert!(outcome.survived <= outcome.boards);
        // The standard population includes fault plans; with jittered
        // charges some boards must dip into the shed band over 2 periods.
        let header_and_rows: Vec<&str> = outcome.csv.lines().collect();
        assert_eq!(header_and_rows.len(), 1 + 1 + 1, "1 shard + total");
    }
}
