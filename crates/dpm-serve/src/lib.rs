//! # dpm-serve
//!
//! A long-running session service over the slot-stepped simulator: each
//! session is one governed [`dpm_sim::sim::ActiveRun`] (any of the four
//! campaign arms — the proposed controller and the full-power static
//! baseline, bare or wrapped in the safety governor), driven one request
//! at a time over an NDJSON protocol (see [`protocol`]). Clients can
//! push event-rate updates, inject mid-flight disturbances, advance the
//! clock N slots, and query the live plan, battery forecast, and
//! degradation state — the operator-console half of the paper's runtime
//! story that the batch harness cannot express.
//!
//! Every session streams schema-v1 telemetry incrementally: the config
//! gauges at open, the event tail after each advance, and the complete
//! batch document (meta line first) at close, so a live stream pipes
//! straight into the `dpm-trace` tooling. With auditing enabled the
//! server feeds each session's stream through an incremental
//! [`dpm_trace::AuditState`] and **kills** any session whose stream
//! breaks an invariant, within one slot of the offending line.
//!
//! The same stream also feeds a per-session [`dpm_trace::Rollup`], and
//! the `Metrics` verb snapshots the whole server as Prometheus-style
//! text exposition (see [`metrics`]): server-wide open/close/kill
//! counters plus per-session step counts, audit violations, replan
//! latency, and battery-slack quantiles — all deterministic in
//! sim-time.
//!
//! ## Determinism
//!
//! Traces carry simulated time only (wall clock never enters a trace),
//! so a fixed request script through `--stdio` produces a byte-identical
//! telemetry stream across runs — and a session driven over TCP produces
//! the same per-session trace as the identical script over stdio,
//! regardless of how many other connections the server is juggling:
//! each session records into its own [`dpm_telemetry::Recorder`] sibling
//! and is absorbed into the root scope only at close.
//!
//! Transport is deliberately boring: [`std::net::TcpListener`] with a
//! thread per connection under a `crossbeam` scope, plus the `--stdio`
//! single-connection mode for deterministic tests. No async runtime.
//!
//! Like the telemetry and trace layers, non-test code here is panic-free
//! (enforced by `ci/forbid_panics.sh`); every failure is a typed
//! [`ServeError`] or a structured `error` response on the wire.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;

pub use error::ServeError;
pub use metrics::{ServerMetrics, SessionMetrics};
pub use protocol::{QueryKind, Request, Response, SessionSpec};
pub use server::{Server, ServerConfig};
pub use session::Session;
