//! End-to-end pipeline tests spanning dpm-core, dpm-sim, dpm-workloads and
//! dpm-bench: scenario → §4.1 allocation → §4.2/4.3 controller → simulated
//! mission → report invariants.

use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_core::prelude::*;
use dpm_sim::prelude::*;
use dpm_workloads::{scenarios, Scenario};

fn run_proposed(scenario: &Scenario, periods: usize) -> SimReport {
    let platform = Platform::pama();
    let allocation = experiments::initial_allocation(&platform, scenario).unwrap();
    let mut governor =
        DpmController::new(platform.clone(), &allocation, scenario.charging.clone()).unwrap();
    experiments::run_governor(&platform, scenario, &mut governor, periods).unwrap()
}

#[test]
fn allocation_is_feasible_for_both_paper_scenarios() {
    let platform = Platform::pama();
    for s in scenarios::all() {
        let a = experiments::initial_allocation(&platform, &s).unwrap();
        assert!(a.feasible, "{} allocation infeasible", s.name);
        assert!(a
            .trajectory
            .within(platform.battery.c_min, platform.battery.c_max, 1e-3));
        // Eq. 8 balance survives the reshaping within a fraction of the
        // supply (the clamps move energy; the battery absorbs the rest).
        let alloc_energy = a.allocation.integral().value();
        let supply = s.charging.integral().value();
        assert!(
            (alloc_energy - supply).abs() < 0.25 * supply,
            "{}: allocation {alloc_energy} vs supply {supply}",
            s.name
        );
    }
}

#[test]
fn proposed_controller_full_mission_has_no_undersupply() {
    for s in scenarios::all() {
        let report = run_proposed(&s, 4);
        assert_eq!(
            report.undersupplied,
            0.0,
            "{}: {}",
            s.name,
            report.summary()
        );
    }
}

#[test]
fn proposed_controller_wastes_a_small_fraction_of_supply() {
    for s in scenarios::all() {
        let report = run_proposed(&s, 4);
        assert!(
            report.wasted < 0.1 * report.offered,
            "{}: wasted {} of {} offered",
            s.name,
            report.wasted,
            report.offered
        );
    }
}

#[test]
fn energy_balance_closes_for_every_governor() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut governors: Vec<Box<dyn Governor>> = vec![
        Box::new({
            let a = experiments::initial_allocation(&platform, &s).unwrap();
            DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap()
        }),
        Box::new(dpm_baselines::StaticGovernor::full_power(&platform).unwrap()),
        Box::new(dpm_baselines::GreedyGovernor::new(platform.clone(), 4.0).unwrap()),
    ];
    for g in governors.iter_mut() {
        let report = experiments::run_governor(&platform, &s, g, 3).unwrap();
        let stored_delta = report.final_battery - report.initial_battery;
        let balance = report.offered - report.wasted - report.delivered - stored_delta;
        assert!(
            balance.abs() < 1e-6,
            "{}: imbalance {balance}",
            report.governor
        );
    }
}

#[test]
fn controller_trace_matches_simulated_slots() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let (trace, report) = experiments::table3_5(&platform, &s, 2).unwrap();
    assert_eq!(trace.len(), report.slots.len());
    for (rec, slot) in trace.iter().zip(&report.slots) {
        assert_eq!(rec.slot, slot.slot);
        // The simulator executed the point the controller commanded.
        assert_eq!(rec.point.workers, slot.workers);
        assert!((rec.point.frequency.mhz() - slot.freq_mhz).abs() < 1e-9);
    }
}

#[test]
fn algorithm3_absorbs_systematic_supply_error() {
    // The controller plans on a forecast 25% above reality; Algorithm 3
    // must shave the plan instead of letting the battery hit bottom.
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let allocation = experiments::initial_allocation(&platform, &s).unwrap();
    let mut governor =
        DpmController::new(platform.clone(), &allocation, s.charging.clone()).unwrap();
    let weak_supply = s.charging.scale(0.8);
    let report = Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(weak_supply)),
        Box::new(ScheduleGenerator::new(s.event_rates(&platform))),
        s.initial_charge,
        SimConfig {
            periods: 4,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run(&mut governor)
    .unwrap();
    // Brown-outs bounded to a small share of the (reduced) supply, where a
    // schedule-blind governor would keep drawing at the planned level.
    assert!(
        report.undersupplied < 0.06 * report.offered,
        "{}",
        report.summary()
    );
}

#[test]
fn longer_missions_scale_linearly() {
    let s = scenarios::scenario_one();
    let short = run_proposed(&s, 2);
    let long = run_proposed(&s, 6);
    assert!((long.offered / short.offered - 3.0).abs() < 0.05);
    let ratio = long.jobs_done as f64 / short.jobs_done as f64;
    assert!(
        (2.0..4.5).contains(&ratio),
        "jobs ratio {ratio} ({} vs {})",
        long.jobs_done,
        short.jobs_done
    );
}

#[test]
fn random_scenarios_never_panic_and_keep_invariants() {
    let platform = Platform::pama();
    for seed in 0..20 {
        let s = dpm_workloads::random_scenario(seed);
        let a = experiments::initial_allocation(&platform, &s).unwrap();
        for &v in a.allocation.values() {
            assert!(v >= platform.power.all_standby().value() - 1e-9);
            assert!(v <= platform.board_power(7, platform.f_max()).value() + 1e-9);
        }
        let mut g = DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap();
        let report = experiments::run_governor(&platform, &s, &mut g, 2).unwrap();
        assert!(report.wasted >= 0.0 && report.undersupplied >= 0.0);
        assert!(report.final_battery >= platform.battery.c_min.value() - 1e-9);
        assert!(report.final_battery <= platform.battery.c_max.value() + 1e-9);
    }
}
