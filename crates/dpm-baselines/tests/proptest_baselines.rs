//! Property-based tests for the baseline governors.

use dpm_baselines::{GreedyGovernor, OracleGovernor, StaticGovernor, TimeoutGovernor};
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::OperatingPoint;
use dpm_core::platform::Platform;
use dpm_core::units::{joules, volts, Hertz, Seconds};
use proptest::prelude::*;

fn obs(slot: u64, battery: f64, supplied: f64, backlog: usize) -> SlotObservation {
    SlotObservation {
        slot,
        time: Seconds(slot as f64 * 4.8),
        battery: joules(battery),
        used_last: joules(0.0),
        supplied_last: joules(supplied),
        backlog,
    }
}

proptest! {
    /// Static is a pure function of the backlog: on iff work exists.
    #[test]
    fn static_is_backlog_pure(
        battery in 0.5f64..16.0,
        supplied in 0.0f64..12.0,
        backlog in 0usize..20,
        slot in 0u64..100,
    ) {
        let mut g = StaticGovernor::full_power(&Platform::pama()).unwrap();
        let p = g.decide(&obs(slot, battery, supplied, backlog)).unwrap();
        prop_assert_eq!(p.is_off(), backlog == 0);
        if !p.is_off() {
            prop_assert_eq!(p.workers, 7);
        }
    }

    /// Timeout stays on exactly `timeout` idle slots past the last work.
    #[test]
    fn timeout_holds_exactly_n_slots(timeout in 0u64..6) {
        let point = OperatingPoint::new(2, Hertz::from_mhz(40.0), volts(3.3));
        let mut g = TimeoutGovernor::new(point, timeout).unwrap();
        // One busy slot, then idle forever.
        prop_assert!(!g.decide(&obs(0, 8.0, 0.0, 1)).unwrap().is_off());
        for k in 1..=timeout {
            prop_assert!(!g.decide(&obs(k, 8.0, 0.0, 0)).unwrap().is_off(), "slot {k}");
        }
        prop_assert!(g.decide(&obs(timeout + 1, 8.0, 0.0, 0)).unwrap().is_off());
    }

    /// Greedy never selects a point whose power exceeds its budget
    /// (battery drawdown + observed supply), hence it can never plan a
    /// brown-out on its own model.
    #[test]
    fn greedy_point_is_affordable(
        battery in 0.5f64..16.0,
        supplied in 0.0f64..12.0,
        backlog in 0usize..20,
        horizon in 1.0f64..12.0,
    ) {
        let platform = Platform::pama();
        let mut g = GreedyGovernor::new(platform.clone(), horizon).unwrap();
        let o = obs(1, battery, supplied, backlog);
        let p = g.decide(&o).unwrap();
        let power = if p.is_off() {
            platform.power.all_standby().value()
        } else {
            platform.board_power(p.workers, p.frequency).value()
        };
        let budget = (battery - 0.5).max(0.0) / (4.8 * horizon) + supplied / 4.8;
        // The off point is always "affordable" (the floor is unavoidable).
        if !p.is_off() {
            prop_assert!(power <= budget + 1e-9, "{power} > {budget}");
        }
    }

    /// Greedy is monotone in battery level: more charge never selects a
    /// weaker point.
    #[test]
    fn greedy_monotone_in_battery(
        b_lo in 0.5f64..8.0,
        delta in 0.0f64..8.0,
        supplied in 0.0f64..12.0,
    ) {
        let platform = Platform::pama();
        let mut g = GreedyGovernor::new(platform.clone(), 4.0).unwrap();
        let power_of = |p: OperatingPoint| {
            if p.is_off() {
                0.0
            } else {
                platform.board_power(p.workers, p.frequency).value()
            }
        };
        let lo = power_of(g.decide(&obs(1, b_lo, supplied, 3)).unwrap());
        let hi = power_of(g.decide(&obs(1, b_lo + delta, supplied, 3)).unwrap());
        prop_assert!(hi + 1e-12 >= lo);
    }

    /// Oracle replay is exactly periodic.
    #[test]
    fn oracle_is_periodic(len in 1usize..24, slot in 0u64..200) {
        let points: Vec<OperatingPoint> = (0..len)
            .map(|i| {
                OperatingPoint::new(
                    (i % 7) + 1,
                    Hertz::from_mhz([20.0, 40.0, 80.0][i % 3]),
                    volts(3.3),
                )
            })
            .collect();
        let mut g = OracleGovernor::new(points.clone()).unwrap();
        let p = g.decide(&obs(slot, 8.0, 0.0, 1)).unwrap();
        prop_assert_eq!(p, points[(slot as usize) % len]);
    }

    /// Fallible-core contract: no governor panics on arbitrary finite
    /// observations — including degenerate ones (zero battery, zero
    /// supply, huge slot counters, empty backlog). Every `decide` on a
    /// validly constructed governor returns `Ok`; the constructors reject
    /// bad configurations with a structured error, never an abort.
    #[test]
    fn governors_never_panic_on_arbitrary_observations(
        slot in 0u64..10_000,
        battery in 0.0f64..32.0,
        supplied in 0.0f64..64.0,
        backlog in 0usize..1_000,
        horizon in 0.0f64..12.0,
        timeout in 0u64..32,
    ) {
        let platform = Platform::pama();
        let o = obs(slot, battery, supplied, backlog);
        let point = OperatingPoint::new(2, Hertz::from_mhz(40.0), volts(3.3));

        prop_assert!(StaticGovernor::full_power(&platform).unwrap().decide(&o).is_ok());
        prop_assert!(TimeoutGovernor::new(point, timeout).unwrap().decide(&o).is_ok());
        prop_assert!(OracleGovernor::new(vec![point]).unwrap().decide(&o).is_ok());
        // A sub-slot horizon is a structured rejection, not a panic.
        match GreedyGovernor::new(platform, horizon) {
            Ok(mut g) => prop_assert!(g.decide(&o).is_ok()),
            Err(e) => {
                prop_assert!(horizon < 1.0, "{e}");
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
