//! The rechargeable battery: a stateful energy store with the §2 capacity
//! window, plus the waste/shortfall accounting the paper's Table 1 metrics
//! are built from.

use crate::error::SimError;
use dpm_core::platform::BatteryLimits;
use dpm_core::units::{Joules, Watts};
use serde::{Deserialize, Serialize};

/// Peukert-style rate dependence: drawing faster than the reference power
/// consumes disproportionately more charge,
/// `consumed = demanded · (P/P_ref)^(k−1)` for `P > P_ref`.
///
/// The satellite NiCd packs of the paper's era show `k ≈ 1.1–1.3`; the
/// paper's ideal model is `k = 1` (no rate dependence), which is what
/// [`BatteryConfig::ideal`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeukertModel {
    /// Draw rate at which the pack delivers its rated capacity.
    pub reference_power: Watts,
    /// Peukert exponent `k ≥ 1`.
    pub exponent: f64,
}

impl PeukertModel {
    /// Charge consumed to deliver `energy` over `dt` seconds.
    pub fn charge_consumed(&self, energy: Joules, dt: f64) -> Joules {
        debug_assert!(self.exponent >= 1.0, "Battery::new validates the exponent");
        if dt <= 0.0 || energy.value() <= 0.0 {
            return energy;
        }
        let rate = energy.value() / dt;
        if rate <= self.reference_power.value() {
            energy
        } else {
            energy * (rate / self.reference_power.value()).powf(self.exponent - 1.0)
        }
    }
}

/// Pure per-board battery kernels over raw `f64` state.
///
/// These are the single implementation of the battery arithmetic: the
/// scalar [`Battery`] delegates to them through its unit-typed fields, and
/// the struct-of-arrays fleet stepper ([`crate::fleet`]) calls them
/// directly on its contiguous slices. Because every unit newtype in
/// `dpm_core::units` wraps one `f64` and forwards its operators 1:1, the
/// two callers are bit-identical by construction. Keep the operation
/// order here exactly as documented — reordering a `min`/`max`/`+` chain
/// breaks the scalar/SoA equivalence proptest.
pub mod kernel {
    /// Offer `energy` joules to a store at `level` with ceiling `c_max`.
    /// Mutates the level and the offered/wasted accumulators; returns the
    /// energy stored. Non-positive (or NaN) offers are ignored.
    #[inline]
    pub fn charge(
        level: &mut f64,
        offered: &mut f64,
        wasted: &mut f64,
        c_max: f64,
        charge_efficiency: f64,
        energy: f64,
    ) -> f64 {
        if !(energy > 0.0) {
            return 0.0;
        }
        *offered += energy;
        let storable = energy * charge_efficiency;
        let headroom = c_max - *level;
        let stored = storable.min(headroom).max(0.0);
        *level += stored;
        *wasted += storable - stored;
        stored
    }

    /// Demand `energy` joules from a store at `level` with floor `c_min`.
    /// Mutates the level and the undersupplied/delivered accumulators;
    /// returns the energy delivered. Non-positive demands are ignored.
    #[inline]
    pub fn draw(
        level: &mut f64,
        undersupplied: &mut f64,
        delivered_total: &mut f64,
        c_min: f64,
        energy: f64,
    ) -> f64 {
        if !(energy > 0.0) {
            return 0.0;
        }
        let available = (*level - c_min).max(0.0);
        let delivered = energy.min(available);
        *level -= delivered;
        *undersupplied += energy - delivered;
        *delivered_total += delivered;
        delivered
    }

    /// Derate the window: `c_max ← c_min + factor·(c_max − c_min)` with
    /// `factor` clamped into `[0, 1]` (non-finite treated as 1). Charge
    /// above the new ceiling is spilled into `wasted`; returns the loss.
    #[inline]
    pub fn fade(
        level: &mut f64,
        wasted: &mut f64,
        c_max: &mut f64,
        c_min: f64,
        factor: f64,
    ) -> f64 {
        let f = if factor.is_finite() {
            factor.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let new_max = c_min + (*c_max - c_min) * f;
        *c_max = new_max;
        let lost = (*level - new_max).max(0.0);
        *level -= lost;
        *wasted += lost;
        lost
    }

    /// Advance self-discharge over `dt` seconds. A no-op when the leak
    /// rate is zero (the paper's ideal battery).
    #[inline]
    pub fn tick(level: &mut f64, self_discharge_per_s: f64, dt: f64) {
        if self_discharge_per_s > 0.0 {
            let leak = *level * (self_discharge_per_s * dt).min(1.0);
            *level = (*level - leak).max(0.0);
        }
    }
}

/// Battery configuration beyond the capacity window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryConfig {
    /// Capacity window `[C_min, C_max]`.
    pub limits: BatteryLimits,
    /// Fraction of offered charge actually stored (coulombic efficiency).
    pub charge_efficiency: f64,
    /// Self-discharge per second as a fraction of current charge (NiCd
    /// cells of the era leaked ~1%/day ≈ 1.2e−7/s; default 0).
    pub self_discharge_per_s: f64,
    /// Optional rate-dependent capacity model; `None` = the paper's ideal
    /// battery.
    pub peukert: Option<PeukertModel>,
}

impl BatteryConfig {
    /// Ideal battery with the given window (the paper's model).
    pub fn ideal(limits: BatteryLimits) -> Self {
        Self {
            limits,
            charge_efficiency: 1.0,
            self_discharge_per_s: 0.0,
            peukert: None,
        }
    }
}

/// The battery state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    config: BatteryConfig,
    level: Joules,
    /// Offered energy that could not be stored (battery full) — the
    /// paper's "wasted energy".
    wasted: Joules,
    /// Energy demanded but not deliverable (battery at `C_min`) — the
    /// paper's "undersupplied energy".
    undersupplied: Joules,
    /// Total energy offered by the source.
    offered: Joules,
    /// Total energy actually delivered to the load.
    delivered: Joules,
    /// Extra charge consumed by rate effects (Peukert overhead).
    rate_loss: Joules,
}

impl Battery {
    /// Create at an initial charge (clamped into `[C_min, C_max]`).
    ///
    /// # Errors
    /// [`SimError::BatteryMisconfigured`] on an efficiency outside
    /// `[0, 1]`, a negative self-discharge rate, or a Peukert exponent
    /// below 1; [`SimError::Core`] on an inverted capacity window.
    pub fn new(config: BatteryConfig, initial: Joules) -> Result<Self, SimError> {
        BatteryLimits::new(config.limits.c_min, config.limits.c_max)?;
        if !(0.0..=1.0).contains(&config.charge_efficiency) {
            return Err(SimError::BatteryMisconfigured(format!(
                "charge efficiency must lie in [0, 1], got {}",
                config.charge_efficiency
            )));
        }
        if !(config.self_discharge_per_s >= 0.0) {
            return Err(SimError::BatteryMisconfigured(format!(
                "self-discharge rate must be non-negative, got {}",
                config.self_discharge_per_s
            )));
        }
        if let Some(p) = config.peukert {
            if !(p.exponent >= 1.0) || !(p.reference_power.value() > 0.0) {
                return Err(SimError::BatteryMisconfigured(format!(
                    "Peukert model needs exponent >= 1 and positive reference power, \
                     got k = {}, P_ref = {}",
                    p.exponent, p.reference_power
                )));
            }
        }
        Ok(Self {
            config,
            level: config.limits.clamp(initial),
            wasted: Joules::ZERO,
            undersupplied: Joules::ZERO,
            offered: Joules::ZERO,
            delivered: Joules::ZERO,
            rate_loss: Joules::ZERO,
        })
    }

    /// Current charge.
    #[inline]
    pub fn level(&self) -> Joules {
        self.level
    }

    /// The configured window.
    #[inline]
    pub fn limits(&self) -> BatteryLimits {
        self.config.limits
    }

    /// Cumulative wasted energy (offered while full).
    #[inline]
    pub fn wasted(&self) -> Joules {
        self.wasted
    }

    /// Cumulative undersupplied energy (demanded below `C_min`).
    #[inline]
    pub fn undersupplied(&self) -> Joules {
        self.undersupplied
    }

    /// Total energy offered by the source so far.
    #[inline]
    pub fn offered(&self) -> Joules {
        self.offered
    }

    /// Total energy delivered to the load so far.
    #[inline]
    pub fn delivered(&self) -> Joules {
        self.delivered
    }

    /// Offer `energy` from the external source. Stores what fits below
    /// `C_max` (after efficiency), accounts the remainder as wasted.
    /// Returns the energy actually stored.
    /// Negative or non-finite offers (a glitched source model) are
    /// ignored rather than corrupting the accounting.
    pub fn charge(&mut self, energy: Joules) -> Joules {
        debug_assert!(energy.value() >= 0.0, "cannot charge a negative amount");
        // Both conversion loss and overflow are energy the mission never
        // uses; the paper's "wasted" metric is overflow only, so losses
        // are tracked inside `stored` vs `offered` and waste is overflow.
        Joules(kernel::charge(
            &mut self.level.0,
            &mut self.offered.0,
            &mut self.wasted.0,
            self.config.limits.c_max.value(),
            self.config.charge_efficiency,
            energy.value(),
        ))
    }

    /// Demand `energy` for the load. Delivers down to `C_min`; the
    /// unmet remainder is accounted as undersupplied. Returns the energy
    /// actually delivered. Rate-agnostic (the paper's ideal model); see
    /// [`Self::draw_over`] for the Peukert-aware path.
    pub fn draw(&mut self, energy: Joules) -> Joules {
        debug_assert!(energy.value() >= 0.0, "cannot draw a negative amount");
        Joules(kernel::draw(
            &mut self.level.0,
            &mut self.undersupplied.0,
            &mut self.delivered.0,
            self.config.limits.c_min.value(),
            energy.value(),
        ))
    }

    /// Rate-aware draw: deliver `energy` over `dt` seconds, consuming
    /// extra charge per the Peukert model when configured. Falls back to
    /// [`Self::draw`] semantics on an ideal battery.
    pub fn draw_over(&mut self, energy: Joules, dt: f64) -> Joules {
        let Some(model) = self.config.peukert else {
            return self.draw(energy);
        };
        debug_assert!(energy.value() >= 0.0, "cannot draw a negative amount");
        if !(energy.value() > 0.0) {
            return Joules::ZERO;
        }
        let consumed_per_delivered = model.charge_consumed(energy, dt) / energy;
        let available = (self.level - self.config.limits.c_min).max(Joules::ZERO);
        // Charge needed to deliver the full request.
        let needed = energy * consumed_per_delivered;
        let (delivered, consumed) = if needed <= available {
            (energy, needed)
        } else {
            // Deliver what the available charge supports at this rate.
            (available * (1.0 / consumed_per_delivered), available)
        };
        self.level -= consumed;
        self.rate_loss += consumed - delivered;
        self.undersupplied += energy - delivered;
        self.delivered += delivered;
        delivered
    }

    /// Extra charge consumed by rate effects so far.
    pub fn rate_loss(&self) -> Joules {
        self.rate_loss
    }

    /// Derate the usable capacity window (cell ageing, a cold eclipse, a
    /// failed string in the pack): `C_max ← C_min + factor·(C_max − C_min)`
    /// with `factor` clamped into `[0, 1]` (non-finite factors are treated
    /// as 1, i.e. no fade). Charge above the shrunken ceiling is lost and
    /// accounted as wasted; `C_min` is untouched — the reserve floor is a
    /// mission constraint, not a cell property. Returns the charge lost.
    ///
    /// Fades compose: two successive `fade(0.5)` calls leave a quarter of
    /// the original window.
    pub fn fade(&mut self, factor: f64) -> Joules {
        Joules(kernel::fade(
            &mut self.level.0,
            &mut self.wasted.0,
            &mut self.config.limits.c_max.0,
            self.config.limits.c_min.value(),
            factor,
        ))
    }

    /// Advance self-discharge over `dt` seconds.
    pub fn tick(&mut self, dt: f64) {
        kernel::tick(&mut self.level.0, self.config.self_discharge_per_s, dt);
    }

    /// Whether this battery's accounting closes exactly: with perfect
    /// coulombic efficiency and no self-discharge, every offered joule is
    /// found again in `wasted + rate_loss + delivered + Δlevel`. Trace
    /// auditors use this to decide whether the energy-conservation
    /// invariant applies to a run (Peukert overhead is fine — it is
    /// tracked in [`Self::rate_loss`] — but conversion and leakage losses
    /// are not itemized).
    pub fn conserves_energy(&self) -> bool {
        self.config.charge_efficiency == 1.0 && self.config.self_discharge_per_s == 0.0
    }

    /// Reset the accounting counters (level is kept).
    pub fn reset_accounting(&mut self) {
        self.wasted = Joules::ZERO;
        self.undersupplied = Joules::ZERO;
        self.offered = Joules::ZERO;
        self.delivered = Joules::ZERO;
        self.rate_loss = Joules::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::joules;

    fn limits() -> BatteryLimits {
        BatteryLimits::new(joules(0.5), joules(16.0)).unwrap()
    }

    fn battery(initial: f64) -> Battery {
        Battery::new(BatteryConfig::ideal(limits()), joules(initial)).unwrap()
    }

    #[test]
    fn initial_level_is_clamped() {
        assert_eq!(battery(100.0).level(), joules(16.0));
        assert_eq!(battery(0.0).level(), joules(0.5));
        assert_eq!(battery(8.0).level(), joules(8.0));
    }

    #[test]
    fn charge_stores_up_to_cmax() {
        let mut b = battery(15.0);
        let stored = b.charge(joules(3.0));
        assert_eq!(stored, joules(1.0));
        assert_eq!(b.level(), joules(16.0));
        assert_eq!(b.wasted(), joules(2.0));
        assert_eq!(b.offered(), joules(3.0));
    }

    #[test]
    fn draw_stops_at_cmin() {
        let mut b = battery(2.0);
        let got = b.draw(joules(3.0));
        assert_eq!(got, joules(1.5));
        assert_eq!(b.level(), joules(0.5));
        assert_eq!(b.undersupplied(), joules(1.5));
    }

    #[test]
    fn normal_cycle_has_no_waste_or_shortfall() {
        let mut b = battery(8.0);
        b.charge(joules(2.0));
        b.draw(joules(3.0));
        assert_eq!(b.level(), joules(7.0));
        assert_eq!(b.wasted(), Joules::ZERO);
        assert_eq!(b.undersupplied(), Joules::ZERO);
        assert_eq!(b.delivered(), joules(3.0));
    }

    #[test]
    fn charge_efficiency_reduces_stored_energy() {
        let cfg = BatteryConfig {
            charge_efficiency: 0.8,
            ..BatteryConfig::ideal(limits())
        };
        let mut b = Battery::new(cfg, joules(8.0)).unwrap();
        let stored = b.charge(joules(1.0));
        assert!(stored.approx_eq(joules(0.8), 1e-12));
        assert!(b.level().approx_eq(joules(8.8), 1e-12));
    }

    #[test]
    fn self_discharge_leaks() {
        let cfg = BatteryConfig {
            self_discharge_per_s: 0.01,
            ..BatteryConfig::ideal(limits())
        };
        let mut b = Battery::new(cfg, joules(10.0)).unwrap();
        b.tick(1.0);
        assert!(b.level().approx_eq(joules(9.9), 1e-9));
        b.tick(0.0);
        assert!(b.level().approx_eq(joules(9.9), 1e-9));
    }

    #[test]
    fn reset_accounting_keeps_level() {
        let mut b = battery(15.5);
        b.charge(joules(5.0));
        b.draw(joules(20.0));
        b.reset_accounting();
        assert_eq!(b.wasted(), Joules::ZERO);
        assert_eq!(b.undersupplied(), Joules::ZERO);
        assert_eq!(b.offered(), Joules::ZERO);
        assert_eq!(b.level(), joules(0.5));
    }

    #[test]
    fn peukert_ideal_rate_is_free() {
        let cfg = BatteryConfig {
            peukert: Some(PeukertModel {
                reference_power: dpm_core::units::watts(2.0),
                exponent: 1.2,
            }),
            ..BatteryConfig::ideal(limits())
        };
        let mut b = Battery::new(cfg, joules(8.0)).unwrap();
        // 1 J over 1 s = 1 W ≤ 2 W reference: no overhead.
        let got = b.draw_over(joules(1.0), 1.0);
        assert_eq!(got, joules(1.0));
        assert_eq!(b.rate_loss(), Joules::ZERO);
        assert!(b.level().approx_eq(joules(7.0), 1e-12));
    }

    #[test]
    fn peukert_fast_draw_costs_extra_charge() {
        let cfg = BatteryConfig {
            peukert: Some(PeukertModel {
                reference_power: dpm_core::units::watts(1.0),
                exponent: 1.2,
            }),
            ..BatteryConfig::ideal(limits())
        };
        let mut b = Battery::new(cfg, joules(8.0)).unwrap();
        // 4 J over 1 s = 4 W = 4x reference: overhead 4^0.2 ≈ 1.32.
        let got = b.draw_over(joules(4.0), 1.0);
        assert_eq!(got, joules(4.0));
        let expect_consumed = 4.0 * 4.0_f64.powf(0.2);
        assert!(
            b.level().approx_eq(joules(8.0 - expect_consumed), 1e-9),
            "{}",
            b.level()
        );
        assert!(b.rate_loss().value() > 1.0);
    }

    #[test]
    fn peukert_shortfall_respects_cmin() {
        let cfg = BatteryConfig {
            peukert: Some(PeukertModel {
                reference_power: dpm_core::units::watts(1.0),
                exponent: 1.3,
            }),
            ..BatteryConfig::ideal(limits())
        };
        let mut b = Battery::new(cfg, joules(2.0)).unwrap();
        // Huge fast demand: deliverable limited by the 1.5 J above C_min,
        // shrunk further by the rate penalty.
        let got = b.draw_over(joules(10.0), 0.5);
        assert!(got.value() < 1.5);
        assert!(b.level().approx_eq(joules(0.5), 1e-9));
        assert!(b.undersupplied().value() > 8.5);
    }

    #[test]
    fn draw_over_without_model_matches_draw() {
        let mut a = battery(8.0);
        let mut b = battery(8.0);
        let ga = a.draw(joules(3.0));
        let gb = b.draw_over(joules(3.0), 0.1);
        assert_eq!(ga, gb);
        assert_eq!(a.level(), b.level());
    }

    #[test]
    fn fade_shrinks_the_window_and_spills_excess_charge() {
        let mut b = battery(12.0);
        // Window 0.5..16 → fade 0.5 → 0.5 + 0.5·15.5 = 8.25 J ceiling.
        let lost = b.fade(0.5);
        assert!(b.limits().c_max.approx_eq(joules(8.25), 1e-12));
        assert_eq!(b.limits().c_min, joules(0.5));
        assert!(lost.approx_eq(joules(12.0 - 8.25), 1e-12));
        assert!(b.level().approx_eq(joules(8.25), 1e-12));
        assert!(b.wasted().approx_eq(lost, 1e-12));
        // Charging now tops out at the derated ceiling.
        b.charge(joules(5.0));
        assert!(b.level().approx_eq(joules(8.25), 1e-12));
    }

    #[test]
    fn fades_compose_and_bad_factors_are_ignored() {
        let mut b = battery(4.0);
        b.fade(0.5);
        b.fade(0.5);
        // 0.5 + 0.25·15.5 = 4.375 J ceiling; 4 J level is below it.
        assert!(b.limits().c_max.approx_eq(joules(4.375), 1e-12));
        assert_eq!(b.level(), joules(4.0));
        let before = b.limits();
        b.fade(f64::NAN);
        b.fade(1.7); // clamped to 1: no further shrink
        assert_eq!(b.limits(), before);
    }

    #[test]
    fn misconfiguration_is_rejected() {
        let bad_eff = BatteryConfig {
            charge_efficiency: 1.5,
            ..BatteryConfig::ideal(limits())
        };
        assert!(matches!(
            Battery::new(bad_eff, joules(8.0)),
            Err(SimError::BatteryMisconfigured(_))
        ));
        let bad_peukert = BatteryConfig {
            peukert: Some(PeukertModel {
                reference_power: dpm_core::units::watts(1.0),
                exponent: 0.5,
            }),
            ..BatteryConfig::ideal(limits())
        };
        assert!(matches!(
            Battery::new(bad_peukert, joules(8.0)),
            Err(SimError::BatteryMisconfigured(_))
        ));
        let inverted = BatteryConfig::ideal(BatteryLimits {
            c_min: joules(5.0),
            c_max: joules(1.0),
        });
        assert!(matches!(
            Battery::new(inverted, joules(8.0)),
            Err(SimError::Core(_))
        ));
    }
}
