//! # dpm-telemetry
//!
//! Deterministic observability for the DPM stack (DESIGN.md §10): a
//! [`Recorder`] that collects counters, gauges, fixed-bucket histograms,
//! span timers, and a bounded ring of structured events, and emits them
//! as JSONL.
//!
//! ## Determinism contract
//!
//! Everything that reaches the JSONL trace is **deterministic by
//! construction**: events are stamped with *simulated* time and a
//! monotonic per-scope sequence number, metric maps iterate in sorted
//! (`BTreeMap`) order, and parallel harnesses give each job its own
//! [`Recorder::sibling`] which the main thread [`Recorder::absorb`]s in
//! job-index order. The trace for a given workload is therefore
//! byte-identical across repeated runs and across `--jobs` settings.
//!
//! Wall-clock measurements ([`Recorder::span`]/[`Recorder::record_span`])
//! are the one intentional exception; they never enter the trace. Only a
//! span's deterministic *call count* is traced — the timings live in an
//! explicitly separate profile section ([`Recorder::profile_jsonl`] and
//! the stderr summary), clearly labeled as non-reproducible.
//!
//! ## Cost when disabled
//!
//! A [`Recorder::disabled`] handle holds no allocation and every method
//! returns after one `Option` check, so instrumented hot paths cost a
//! branch when telemetry is off (benchmarked in `dpm-bench/benches/
//! telemetry.rs`).
//!
//! ```
//! use dpm_telemetry::Recorder;
//!
//! let rec = Recorder::enabled("example");
//! rec.incr("jobs.completed", 3);
//! rec.event("slot", Some(0), 4.8, &[("battery_j", 7.25)]);
//! let jsonl = rec.to_jsonl();
//! assert!(jsonl.lines().count() >= 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod histogram;
pub mod recorder;
pub mod trace;

pub use histogram::Histogram;
pub use recorder::{Recorder, SpanGuard, DEFAULT_EVENT_CAPACITY};
pub use trace::{
    parse_profile_doc, parse_profile_jsonl, parse_trace_jsonl, CounterLine, Event, GaugeLine,
    HistogramLine, ParseError, ProfileLine, SpanLine, SpanNodeLine, TraceLine, TraceMeta,
    SCHEMA_VERSION,
};

// Compile-time thread-safety audit: recorders are shared across the
// scoped worker threads of the dpm-bench runner (one sibling per job) and
// cloned into governors and simulations that move across the job
// boundary, so the handle must be `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Recorder>();
    assert_send_sync::<TraceLine>();
};

/// One-stop imports.
pub mod prelude {
    pub use crate::histogram::Histogram;
    pub use crate::recorder::{Recorder, SpanGuard};
    pub use crate::trace::{Event, ProfileLine, TraceLine};
}
