//! Parameter sweeps around the paper's operating point, as a library.
//!
//! The `sweep` binary is a thin shell over this module so the CSV
//! generation is testable: [`run`] must produce **byte-identical** output
//! for any worker count (the runner collects results by point index, never
//! by completion order).
//!
//! Four sweeps map where the proposed algorithm's advantage comes from:
//!
//! * `battery` — waste/undersupply vs. battery window size;
//! * `sunlit`  — vs. sunlit fraction of the orbit;
//! * `noise`   — vs. supply-forecast error (seeded);
//! * `load`    — vs. event-rate scaling.
//!
//! Every sweep point is one independent job (proposed + static governor on
//! the same inputs) fanned across worker threads. **Failure isolation:**
//! an infeasible point reports its [`SimError`] in its own CSV row —
//! `sweep,value,error,<message>,,,` — without aborting sibling points;
//! [`SweepOutcome::failures`] counts them so the binary can keep its
//! exit-code contract (1 when any point failed).

use crate::experiments::AllocCache;
use crate::runner::{self, RunStats};
use dpm_baselines::StaticGovernor;
use dpm_core::platform::{BatteryLimits, Platform};
use dpm_core::runtime::DpmController;
use dpm_core::units::joules;
use dpm_sim::prelude::*;
use dpm_telemetry::Recorder;
use dpm_workloads::{scenarios, OrbitScenarioBuilder, Scenario};
use std::fmt::Write as _;
use std::sync::Arc;

/// Charging periods each sweep point simulates. Long enough that a point
/// is real work (the parallel harness exists to absorb it), short enough
/// that the full sweep stays interactive.
pub const DEFAULT_PERIODS: usize = 256;

/// The sweeps this module knows, in output order.
pub const SWEEP_NAMES: [&str; 4] = ["battery", "sunlit", "noise", "load"];

/// Relative supply-forecast error used by the `noise` sweep.
const NOISE_SIGMA: f64 = 0.2;

/// One prepared sweep point: everything a worker needs, read-only.
struct SweepPoint {
    sweep: &'static str,
    value: f64,
    platform: Arc<Platform>,
    scenario: Arc<Scenario>,
    seed: Option<u64>,
    periods: usize,
}

/// What one worker hands back for a point.
type PairResult = Result<(SimReport, SimReport), SimError>;

/// The assembled result of a sweep run.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The CSV blocks, identical for every worker count.
    pub csv: String,
    /// Runner statistics (wall clock, per-job timings).
    pub stats: RunStats,
    /// Number of points that reported an error row.
    pub failures: usize,
    /// Simulation steps (slot sub-steps) executed across all points, for
    /// throughput reporting.
    pub sim_steps: u64,
}

/// Run the named sweeps (all of them when `selected` is empty) on up to
/// `jobs` worker threads, simulating `periods` charging periods per point.
///
/// # Errors
/// Returns [`SimError`] only for *setup* failures (a sweep grid that
/// cannot even be constructed). Per-point simulation failures do not
/// abort the run; they appear as error rows and in
/// [`SweepOutcome::failures`].
pub fn run(selected: &[String], jobs: usize, periods: usize) -> Result<SweepOutcome, SimError> {
    run_with(selected, jobs, periods, &Recorder::disabled())
}

/// [`run`] with telemetry: each point records into its own sibling
/// recorder (sub-scoped `proposed`/`static` per governor run), absorbed
/// into `telemetry` in point order as `sweep/{name}/{index}` — so the
/// trace, like the CSV, is byte-identical for any worker count.
///
/// # Errors
/// Same contract as [`run`].
pub fn run_with(
    selected: &[String],
    jobs: usize,
    periods: usize,
    telemetry: &Recorder,
) -> Result<SweepOutcome, SimError> {
    let all = selected.is_empty();
    let want = |k: &str| all || selected.iter().any(|a| a == k);

    let mut points: Vec<SweepPoint> = Vec::new();
    if want("battery") {
        points.extend(battery_points(periods)?);
    }
    if want("sunlit") {
        points.extend(sunlit_points(periods)?);
    }
    if want("noise") {
        points.extend(noise_points(periods));
    }
    if want("load") {
        points.extend(load_points(periods));
    }

    let cache = AllocCache::new();
    let siblings: Vec<Recorder> = points.iter().map(|_| telemetry.sibling()).collect();
    let (results, stats) =
        runner::run_indexed(&points, jobs, |i, p| run_pair_with(p, &cache, &siblings[i]));
    for (i, (point, sibling)) in points.iter().zip(&siblings).enumerate() {
        telemetry.absorb(&format!("sweep/{}/{i}", point.sweep), sibling);
    }
    stats.record_into(telemetry, "sweep");

    let mut csv = String::new();
    let mut failures = 0usize;
    let mut sim_steps = 0u64;
    let mut current_sweep = "";
    for (point, slot) in points.iter().zip(results) {
        if point.sweep != current_sweep {
            current_sweep = point.sweep;
            let _ = writeln!(
                csv,
                "sweep,{},governor,wasted_j,undersupplied_j,jobs,utilization",
                param_name(point.sweep)
            );
        }
        let outcome = match slot {
            Ok(pair) => pair,
            Err(panic) => Err(SimError::WorkerPanic(panic.to_string())),
        };
        match outcome {
            Ok((proposed, statik)) => {
                emit(&mut csv, point, &proposed);
                emit(&mut csv, point, &statik);
                sim_steps += 2 * sim_steps_per_run(point);
            }
            Err(e) => {
                failures += 1;
                let _ = writeln!(
                    csv,
                    "{},{},error,{},,,",
                    point.sweep,
                    point.value,
                    sanitize(&e.to_string())
                );
            }
        }
    }

    Ok(SweepOutcome {
        csv,
        stats,
        failures,
        sim_steps,
    })
}

/// The independent-variable column header of a sweep block.
fn param_name(sweep: &str) -> &'static str {
    match sweep {
        "battery" => "cmax_j",
        "sunlit" => "fraction",
        "noise" => "seed",
        _ => "rate_scale",
    }
}

/// CSV fields must stay one column each: strip separators/newlines from
/// error messages.
fn sanitize(msg: &str) -> String {
    msg.replace([',', '\n', '\r'], ";")
}

fn emit(csv: &mut String, point: &SweepPoint, r: &SimReport) {
    let _ = writeln!(
        csv,
        "{},{},{},{:.3},{:.3},{},{:.4}",
        point.sweep,
        point.value,
        r.governor,
        r.wasted,
        r.undersupplied,
        r.jobs_done,
        r.utilization()
    );
}

/// Slot sub-steps one governor run of this point executes.
fn sim_steps_per_run(point: &SweepPoint) -> u64 {
    (point.periods * point.scenario.charging.len() * 8) as u64
}

/// Run the proposed controller and the static comparator on one point,
/// each recording into its own sub-scope of `telemetry` (the point's
/// sibling recorder — everything here is sequential within the job, so
/// the sub-scopes are absorbed deterministically).
fn run_pair_with(point: &SweepPoint, cache: &AllocCache, telemetry: &Recorder) -> PairResult {
    let run = |gov: &mut dyn dpm_core::governor::Governor,
               rec: &Recorder|
     -> Result<SimReport, SimError> {
        let source: Box<dyn ChargingSource> = match point.seed {
            Some(s) => Box::new(NoisySource::new(
                TraceSource::new(point.scenario.charging.clone()),
                NOISE_SIGMA,
                point.platform.tau,
                s,
            )),
            None => Box::new(TraceSource::new(point.scenario.charging.clone())),
        };
        Simulation::new(
            Arc::clone(&point.platform),
            source,
            Box::new(ScheduleGenerator::new(
                point.scenario.event_rates(&point.platform),
            )),
            point.scenario.initial_charge,
            SimConfig {
                periods: point.periods,
                slots_per_period: point.scenario.charging.len(),
                substeps: 8,
                trace: false,
            },
        )?
        .with_telemetry(rec.clone())
        .run(gov)
    };
    let alloc = cache.allocation(&point.platform, &point.scenario)?;
    let (_, pareto) = cache.pareto(&point.platform)?;
    let proposed_rec = telemetry.sibling();
    let mut proposed = DpmController::with_table(
        Arc::clone(&point.platform),
        &alloc,
        point.scenario.charging.clone(),
        pareto,
    )?
    .without_trace()
    .with_telemetry(proposed_rec.clone());
    let rp = run(&mut proposed, &proposed_rec)?;
    telemetry.absorb("proposed", &proposed_rec);
    let static_rec = telemetry.sibling();
    let mut statik = StaticGovernor::full_power(&point.platform)?;
    let rs = run(&mut statik, &static_rec)?;
    telemetry.absorb("static", &static_rec);
    Ok((rp, rs))
}

fn battery_points(periods: usize) -> Result<Vec<SweepPoint>, SimError> {
    let s = scenarios::scenario_one();
    let grid = [
        3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0,
    ];
    let mut out = Vec::with_capacity(grid.len());
    for cmax in grid {
        let mut platform = Platform::pama();
        platform.battery = BatteryLimits::new(joules(0.5), joules(cmax))?;
        let mut scenario = s.clone();
        scenario.initial_charge = joules(0.5 * (0.5 + cmax));
        out.push(SweepPoint {
            sweep: "battery",
            value: cmax,
            platform: Arc::new(platform),
            scenario: Arc::new(scenario),
            seed: None,
            periods,
        });
    }
    Ok(out)
}

fn sunlit_points(periods: usize) -> Result<Vec<SweepPoint>, SimError> {
    let platform = Arc::new(Platform::pama());
    let grid = [0.2, 0.25, 0.3, 0.35, 0.4, 0.5, 0.6, 0.65, 0.7, 0.8];
    let mut out = Vec::with_capacity(grid.len());
    for f in grid {
        let scenario = OrbitScenarioBuilder::new(format!("sun-{f}"))
            .sunlit_fraction(f)
            .demand_base(0.5)
            .demand_peak(2, 1.2)
            .demand_peak(8, 0.9)
            .build()?;
        out.push(SweepPoint {
            sweep: "sunlit",
            value: f,
            platform: Arc::clone(&platform),
            scenario: Arc::new(scenario),
            seed: None,
            periods,
        });
    }
    Ok(out)
}

fn noise_points(periods: usize) -> Vec<SweepPoint> {
    let platform = Arc::new(Platform::pama());
    let scenario = Arc::new(scenarios::scenario_one());
    (1..=12u64)
        .map(|seed| SweepPoint {
            sweep: "noise",
            value: seed as f64,
            platform: Arc::clone(&platform),
            scenario: Arc::clone(&scenario),
            seed: Some(seed),
            periods,
        })
        .collect()
}

fn load_points(periods: usize) -> Vec<SweepPoint> {
    let platform = Arc::new(Platform::pama());
    let base = scenarios::scenario_one();
    [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0]
        .into_iter()
        .map(|k| {
            let mut scenario = base.clone();
            scenario.use_power = base.use_power.scale(k);
            SweepPoint {
                sweep: "load",
                value: k,
                platform: Arc::clone(&platform),
                scenario: Arc::new(scenario),
                seed: None,
                periods,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_selection_filters_blocks() {
        let out = run(&["load".to_string()], 1, 1).unwrap();
        assert!(out.csv.contains("load,"));
        assert!(!out.csv.contains("battery,"));
        assert_eq!(out.failures, 0);
    }

    #[test]
    fn header_appears_once_per_block() {
        let out = run(&["noise".to_string(), "load".to_string()], 2, 1).unwrap();
        let headers = out.csv.lines().filter(|l| l.starts_with("sweep,")).count();
        assert_eq!(headers, 2);
    }
}
