//! Property-based tests for the lease broker: dependency legality must
//! survive arbitrary grant/revoke/fault/recover interleavings over
//! arbitrary DAGs, and restores must replay revocations in reverse.

use dpm_broker::{Broker, BrokerConfig, Topology, TopologyBuilder};
use proptest::prelude::*;

/// Elements in every generated topology (providers get lower indices,
/// so edges child > provider keep the builder acyclic by construction).
const N: usize = 8;
/// Candidate child→provider pairs: every (child, provider < child).
const PAIRS: usize = N * (N - 1) / 2;

/// Build a random DAG over `N` elements from per-element max levels and
/// a bitmask over every forward pair, with per-edge requirements clamped
/// to the provider's range.
fn build_dag(max_levels: &[u8], edge_bits: &[bool], reqs: &[u8]) -> Topology {
    let mut b = TopologyBuilder::new();
    let ids: Vec<usize> = (0..N)
        .map(|i| b.element(&format!("el{i}"), max_levels[i].max(1), 0))
        .collect();
    let mut pair = 0usize;
    for child in 1..N {
        for provider in 0..child {
            if edge_bits[pair] {
                let req = reqs[pair].clamp(1, max_levels[provider].max(1));
                b.edge(ids[child], ids[provider], req);
            }
            pair += 1;
        }
    }
    b.build().expect("forward-edge DAG always builds")
}

fn no_dwell() -> BrokerConfig {
    BrokerConfig {
        dwell_slots: 0,
        max_restore_retries: 4,
    }
}

/// One scripted interaction with the broker.
#[derive(Debug, Clone, Copy)]
enum Op {
    Grant { element: usize, level: u8 },
    Revoke { lease: usize },
    Fault { element: usize },
    Recover { element: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted choice by kind bucket: 0-2 grant, 3-4 revoke, 5 fault,
    // 6 recover (the stub proptest has no `prop_oneof`).
    (0u8..7, 0..N, 1u8..=3, 0usize..64).prop_map(|(kind, element, level, lease)| match kind {
        0..=2 => Op::Grant { element, level },
        3 | 4 => Op::Revoke { lease },
        5 => Op::Fault { element },
        _ => Op::Recover { element },
    })
}

proptest! {
    /// Legality is a *step* invariant: after every sync/fault in any
    /// op sequence over any DAG, no element sits above a provider that
    /// cannot support it, and no element exceeds its declared range.
    #[test]
    fn random_ops_never_power_an_element_above_its_provider(
        max_levels in prop::collection::vec(1u8..=3, N..=N),
        edge_bits in prop::collection::vec(any::<bool>(), PAIRS..=PAIRS),
        reqs in prop::collection::vec(1u8..=3, PAIRS..=PAIRS),
        ops in prop::collection::vec(op_strategy(), 1..48),
    ) {
        let topo = build_dag(&max_levels, &edge_bits, &reqs);
        let mut broker = Broker::new(topo.clone(), no_dwell());
        let mut leases: Vec<usize> = Vec::new();
        for (slot, op) in ops.iter().enumerate() {
            broker.begin_slot(slot as u64, slot as f64);
            match *op {
                Op::Grant { element, level } => {
                    let level = level.clamp(1, max_levels[element].max(1));
                    let id = broker.lease(element, level).expect("lease in range");
                    broker.set_active(id, true).expect("fresh lease");
                    leases.push(id);
                }
                Op::Revoke { lease } => {
                    if !leases.is_empty() {
                        let id = leases[lease % leases.len()];
                        broker.set_active(id, false).expect("known lease");
                    }
                }
                Op::Fault { element } => {
                    broker.fault(element, slot as f64).expect("known element");
                    // The cascade itself must land on a legal config.
                    prop_assert!(topo.violation(broker.levels()).is_none());
                }
                Op::Recover { element } => {
                    broker.recover(element, slot as f64).expect("known element");
                }
            }
            broker.sync();
            prop_assert!(
                topo.violation(broker.levels()).is_none(),
                "illegal after {op:?}: {:?}",
                broker.levels()
            );
            for (e, &lvl) in broker.levels().iter().enumerate() {
                prop_assert!(lvl <= max_levels[e].max(1), "element {e} above max");
            }
        }
    }

    /// With no faults and no dwell, deactivating every lease revokes a
    /// set of elements leaves-first, and reactivating restores exactly
    /// that set in the reverse (providers-first) order.
    #[test]
    fn restore_order_reverses_revoke_order(
        max_levels in prop::collection::vec(1u8..=3, N..=N),
        edge_bits in prop::collection::vec(any::<bool>(), PAIRS..=PAIRS),
        reqs in prop::collection::vec(1u8..=3, PAIRS..=PAIRS),
        demand in prop::collection::vec(any::<bool>(), N..=N),
    ) {
        let topo = build_dag(&max_levels, &edge_bits, &reqs);
        let mut broker = Broker::new(topo.clone(), no_dwell());
        let mut leases = Vec::new();
        for (e, &wanted) in demand.iter().enumerate() {
            if wanted {
                let id = broker.lease(e, max_levels[e].max(1)).expect("in range");
                broker.set_active(id, true).expect("fresh lease");
                leases.push(id);
            }
        }
        broker.begin_slot(0, 0.0);
        broker.sync();
        let powered = broker.levels().to_vec();
        broker.take_actions();

        for &id in &leases {
            broker.set_active(id, false).expect("known lease");
        }
        broker.begin_slot(1, 1.0);
        broker.sync();
        let revoked: Vec<usize> = broker.take_actions().iter().map(|a| a.element).collect();

        for &id in &leases {
            broker.set_active(id, true).expect("known lease");
        }
        broker.begin_slot(2, 2.0);
        broker.sync();
        let restored: Vec<usize> = broker.take_actions().iter().map(|a| a.element).collect();

        let mut expected = revoked.clone();
        expected.reverse();
        prop_assert_eq!(restored, expected);
        // And the restore lands back on the originally granted levels.
        prop_assert_eq!(broker.levels(), &powered[..]);
    }
}
