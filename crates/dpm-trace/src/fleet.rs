//! Fleet-campaign analytics: aggregate the per-shard `fleet.*` metrics a
//! `campaign --fleet` trace carries into one population report.
//!
//! The fleet campaign records each shard into its own `fleet/{i}` scope
//! (see `dpm-bench`'s fleet module): counters for board/survival/shed/job
//! totals, equal-bounds battery-floor and final-battery histograms, and
//! an undersupply gauge. Because every shard shares the same bucket
//! bounds (derived from the platform's battery window alone), the shard
//! histograms merge **bucket-exact** — the population percentiles below
//! are computed on the merged histogram, not approximated from per-shard
//! summaries.
//!
//! [`summarize`] returns `None` for traces with no fleet metrics, so the
//! `dpm-analyze fleet` command can reject non-fleet traces cleanly.

use crate::model::{split_scoped, Trace};
use crate::summary::quantile;
use dpm_telemetry::HistogramLine;
use std::fmt::Write as _;

/// The aggregated population report for one fleet-campaign trace.
#[derive(Debug, Clone, Default)]
pub struct FleetSummary {
    /// Boards simulated, summed across shards.
    pub boards: u64,
    /// Board-slots stepped (boards × slots), summed across shards.
    pub board_slots: u64,
    /// Boards that survived (no undersupply, floor above `c_min`).
    pub survived: u64,
    /// Shed-guard degradation transitions, summed across shards.
    pub sheds: u64,
    /// Jobs completed across the population.
    pub jobs_done: u64,
    /// Jobs dropped at full backlogs across the population.
    pub jobs_dropped: u64,
    /// Undersupplied energy summed across shards, in joules.
    pub undersupplied_j: f64,
    /// Merged per-board battery-floor histogram (`fleet.min_battery_j`).
    pub min_battery: Option<HistogramLine>,
    /// Merged per-board final-battery histogram (`fleet.final_battery_j`).
    pub final_battery: Option<HistogramLine>,
    /// Per-scope shed counts (`(scope, sheds)`), in scope order — the
    /// shed-event census across shards.
    pub shed_census: Vec<(String, u64)>,
    /// Shard histograms skipped because their bucket bounds disagreed
    /// with the first shard's (0 for any single-campaign trace).
    pub mismatched_histograms: usize,
}

impl FleetSummary {
    /// Fraction of boards that survived; `1.0` for an empty fleet.
    #[must_use]
    pub fn survival_fraction(&self) -> f64 {
        if self.boards == 0 {
            1.0
        } else {
            self.survived as f64 / self.boards as f64
        }
    }

    /// Population battery-floor quantile in joules, from the merged
    /// histogram (`0.0` when the trace carried no floor observations).
    #[must_use]
    pub fn floor_quantile(&self, q: f64) -> f64 {
        self.min_battery.as_ref().map_or(0.0, |h| quantile(h, q))
    }
}

/// Merge `line` into `into`, summing counts bucket-by-bucket. Returns
/// `false` (and leaves `into` untouched) when the bucket bounds or
/// bucket counts disagree — merged quantiles would be meaningless.
fn merge_histogram(into: &mut HistogramLine, line: &HistogramLine) -> bool {
    let same_bounds = into.bounds.len() == line.bounds.len()
        && into
            .bounds
            .iter()
            .zip(&line.bounds)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    if !same_bounds || into.counts.len() != line.counts.len() {
        return false;
    }
    for (a, b) in into.counts.iter_mut().zip(&line.counts) {
        *a += b;
    }
    if line.count > 0 {
        if into.count == 0 {
            into.min = line.min;
            into.max = line.max;
        } else {
            into.min = into.min.min(line.min);
            into.max = into.max.max(line.max);
        }
    }
    into.count += line.count;
    into.sum += line.sum;
    true
}

/// Aggregate a trace's `fleet.*` metrics across shard scopes, or `None`
/// when the trace carries none (it is not a fleet-campaign trace).
#[must_use]
pub fn summarize(trace: &Trace) -> Option<FleetSummary> {
    let mut out = FleetSummary::default();
    let mut saw_fleet = false;

    for (name, value) in &trace.counters {
        let (scope, metric) = split_scoped(name);
        match metric {
            "fleet.boards" => out.boards += value,
            "fleet.board_slots" => out.board_slots += value,
            "fleet.survived" => out.survived += value,
            "fleet.sheds" => {
                out.sheds += value;
                out.shed_census.push((scope.to_string(), *value));
            }
            "fleet.jobs_done" => out.jobs_done += value,
            "fleet.jobs_dropped" => out.jobs_dropped += value,
            _ => continue,
        }
        saw_fleet = true;
    }

    for (name, value) in &trace.gauges {
        if split_scoped(name).1 == "fleet.undersupplied_j" {
            out.undersupplied_j += value;
            saw_fleet = true;
        }
    }

    for (name, line) in &trace.histograms {
        let slot = match split_scoped(name).1 {
            "fleet.min_battery_j" => &mut out.min_battery,
            "fleet.final_battery_j" => &mut out.final_battery,
            _ => continue,
        };
        saw_fleet = true;
        match slot {
            None => *slot = Some(line.clone()),
            Some(merged) => {
                if !merge_histogram(merged, line) {
                    out.mismatched_histograms += 1;
                }
            }
        }
    }

    saw_fleet.then_some(out)
}

/// Render the population report as plain text (ends with a newline).
#[must_use]
pub fn render(summary: &FleetSummary) -> String {
    let mut out = String::new();
    let shards = summary.shed_census.len();
    let _ = writeln!(
        out,
        "fleet: {} board(s), {} board-slot(s), {} shard(s)",
        summary.boards, summary.board_slots, shards
    );
    let _ = writeln!(
        out,
        "survival: {}/{} ({:.1}%)",
        summary.survived,
        summary.boards,
        100.0 * summary.survival_fraction()
    );
    let _ = writeln!(
        out,
        "jobs: {} done, {} dropped",
        summary.jobs_done, summary.jobs_dropped
    );
    let _ = writeln!(out, "undersupplied: {:.4} J", summary.undersupplied_j);
    if let Some(h) = &summary.min_battery {
        let _ = writeln!(
            out,
            "battery floor (J): p1 {:.4}  p10 {:.4}  p50 {:.4}  \
             min {:.4}  max {:.4}",
            quantile(h, 0.01),
            quantile(h, 0.10),
            quantile(h, 0.50),
            h.min,
            h.max
        );
    }
    if let Some(h) = &summary.final_battery {
        let _ = writeln!(
            out,
            "final battery (J): p10 {:.4}  p50 {:.4}  p90 {:.4}",
            quantile(h, 0.10),
            quantile(h, 0.50),
            quantile(h, 0.90)
        );
    }
    let _ = writeln!(out, "shed census: {} event(s)", summary.sheds);
    // Large fleets have hundreds of shards; show the heaviest few.
    const CENSUS_ROWS: usize = 12;
    let mut census: Vec<&(String, u64)> = summary.shed_census.iter().collect();
    census.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (scope, sheds) in census.iter().take(CENSUS_ROWS) {
        let label = if scope.is_empty() { "(root)" } else { scope };
        let _ = writeln!(out, "  {label}: {sheds}");
    }
    if census.len() > CENSUS_ROWS {
        let _ = writeln!(out, "  … and {} more shard(s)", census.len() - CENSUS_ROWS);
    }
    if summary.mismatched_histograms > 0 {
        let _ = writeln!(
            out,
            "warning: {} histogram(s) skipped (bucket bounds disagree \
             across scopes — mixed traces?)",
            summary.mismatched_histograms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_telemetry::Recorder;

    fn shard(sheds: u64, survived: u64, floors: &[f64]) -> Recorder {
        let r = Recorder::enabled("shard");
        r.incr("fleet.boards", floors.len() as u64);
        r.incr("fleet.board_slots", 24 * floors.len() as u64);
        r.incr("fleet.survived", survived);
        r.incr("fleet.sheds", sheds);
        r.incr("fleet.jobs_done", 100);
        r.incr("fleet.jobs_dropped", 3);
        let bounds: Vec<f64> = (1..=4).map(|i| i as f64 * 4.0).collect();
        for &f in floors {
            r.observe_with("fleet.min_battery_j", &bounds, f);
            r.observe_with("fleet.final_battery_j", &bounds, f + 1.0);
        }
        r.gauge("fleet.undersupplied_j", 0.5);
        r
    }

    fn fleet_trace() -> Trace {
        let root = Recorder::enabled("fleet");
        root.absorb("fleet/0", &shard(2, 3, &[1.0, 5.0, 9.0]));
        root.absorb("fleet/1", &shard(1, 2, &[13.0, 17.0]));
        Trace::parse(&root.to_jsonl()).unwrap()
    }

    #[test]
    fn counters_sum_across_shards() {
        let s = summarize(&fleet_trace()).unwrap();
        assert_eq!(s.boards, 5);
        assert_eq!(s.board_slots, 120);
        assert_eq!(s.survived, 5);
        assert_eq!(s.sheds, 3);
        assert_eq!(s.jobs_done, 200);
        assert_eq!(s.jobs_dropped, 6);
        assert!((s.undersupplied_j - 1.0).abs() < 1e-12);
        assert!((s.survival_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(s.mismatched_histograms, 0);
    }

    #[test]
    fn histograms_merge_bucket_exact() {
        let s = summarize(&fleet_trace()).unwrap();
        let h = s.min_battery.as_ref().unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 17.0);
        // Bucket census: 1.0→≤4, 5.0→≤8, 9.0→≤12, 13.0→≤16, 17.0→overflow.
        assert_eq!(h.counts, vec![1, 1, 1, 1, 1]);
        // The median rank (2.5 of 5) lands halfway into the ≤12 bucket:
        // interpolating between its edges (8, 12) gives exactly 10.
        assert!((s.floor_quantile(0.5) - 10.0).abs() < 1e-12);
        // p1 (rank 0.05) sits 5% into the first bucket, whose lower edge
        // is tightened to the observed min: 1 + 0.05·(4−1) = 1.15.
        assert!((s.floor_quantile(0.01) - 1.15).abs() < 1e-12);
    }

    #[test]
    fn shed_census_lists_scopes_in_order() {
        let s = summarize(&fleet_trace()).unwrap();
        assert_eq!(
            s.shed_census,
            vec![("fleet/0".to_string(), 2), ("fleet/1".to_string(), 1)]
        );
    }

    #[test]
    fn mismatched_bounds_are_counted_not_merged() {
        let root = Recorder::enabled("fleet");
        let a = Recorder::enabled("shard");
        a.observe_with("fleet.min_battery_j", &[1.0, 2.0], 0.5);
        let b = Recorder::enabled("shard");
        b.observe_with("fleet.min_battery_j", &[1.0, 3.0], 0.5);
        root.absorb("fleet/0", &a);
        root.absorb("fleet/1", &b);
        let trace = Trace::parse(&root.to_jsonl()).unwrap();
        let s = summarize(&trace).unwrap();
        assert_eq!(s.mismatched_histograms, 1);
        assert_eq!(s.min_battery.as_ref().unwrap().count, 1);
    }

    #[test]
    fn non_fleet_traces_summarize_to_none() {
        let r = Recorder::enabled("sweep");
        r.incr("sim.slots", 7);
        let trace = Trace::parse(&r.to_jsonl()).unwrap();
        assert!(summarize(&trace).is_none());
    }

    #[test]
    fn render_covers_every_section() {
        let s = summarize(&fleet_trace()).unwrap();
        let text = render(&s);
        assert!(text.contains("fleet: 5 board(s)"));
        assert!(text.contains("survival: 5/5 (100.0%)"));
        assert!(text.contains("battery floor (J): p1"));
        assert!(text.contains("final battery (J): p10"));
        assert!(text.contains("shed census: 3 event(s)"));
        assert!(text.contains("  fleet/0: 2"));
        assert!(!text.contains("warning:"));
    }

    #[test]
    fn every_counter_the_campaign_emits_is_read() {
        // The base names dpm-bench's fleet module records, one each.
        let r = Recorder::enabled("shard");
        for c in [
            "fleet.boards",
            "fleet.board_slots",
            "fleet.survived",
            "fleet.sheds",
            "fleet.jobs_done",
            "fleet.jobs_dropped",
        ] {
            r.incr(c, 1);
        }
        let trace = Trace::parse(&r.to_jsonl()).unwrap();
        let s = summarize(&trace).unwrap();
        assert_eq!(s.boards, 1);
        assert_eq!(s.board_slots, 1);
        assert_eq!(s.survived, 1);
        assert_eq!(s.sheds, 1);
        assert_eq!(s.jobs_done, 1);
        assert_eq!(s.jobs_dropped, 1);
    }
}
