//! The M32R/D PIM processor model: power modes, frequency switching, and
//! the FPGA-assisted wake sequence of §5.
//!
//! Modes (datasheet numbers the paper quotes):
//! * **Active** — full circuit, 546 mW typical at 80 MHz/3.3 V.
//! * **Sleep** — only on-chip DRAM refreshed, 393 mW ("not used" in the
//!   paper's simulation, but modelled for completeness).
//! * **Standby** — interrupt monitor only, 6.6 mW.
//!
//! Transitions have latencies: a frequency change writes the divisor to
//! the adjacent FPGA, drops to standby, and is woken automatically after
//! 10 cycles of the *new* clock; a standby→active wake is an interrupt
//! plus pipeline refill. The paper notes frequency changes therefore cost
//! more than mode changes.

use dpm_core::model::ModePower;
use dpm_core::units::{seconds, Hertz, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Pure chip-power kernel shared by [`Processor::power`] and the fleet
/// stepper ([`crate::fleet`]): instantaneous draw of one chip in `mode`
/// at `frequency`, with active power scaled linearly against the
/// calibration frequency. Keeping the arithmetic here is what makes the
/// scalar board and the struct-of-arrays power sum bit-identical.
#[inline]
pub fn chip_power(
    mode: Mode,
    frequency: Hertz,
    mode_power: &ModePower,
    calibration_f: Hertz,
) -> Watts {
    match mode {
        Mode::Active => {
            // Linear-in-frequency share of the calibrated active power.
            mode_power.active * (frequency.value() / calibration_f.value())
        }
        Mode::Sleep => mode_power.sleep,
        Mode::Standby => mode_power.standby,
    }
}

/// Processor power mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Full circuit active at the current frequency.
    Active,
    /// DRAM retained, core stopped.
    Sleep,
    /// Everything stopped but the interrupt monitor.
    Standby,
}

/// Transition latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionLatency {
    /// Standby/sleep → active wake time.
    pub wake: Seconds,
    /// Cycles of the new clock the FPGA waits before re-waking after a
    /// frequency write (10 on PAMA).
    pub freq_change_cycles: u32,
}

impl TransitionLatency {
    /// PAMA values: a ~100 µs wake, 10-cycle frequency relock.
    pub fn pama() -> Self {
        Self {
            wake: seconds(100e-6),
            freq_change_cycles: 10,
        }
    }

    /// Time for a frequency change to `new_f`: FPGA write + standby dwell
    /// of `freq_change_cycles` at the new clock + wake.
    pub fn frequency_change(&self, new_f: Hertz) -> Seconds {
        assert!(new_f.value() > 0.0);
        seconds(self.freq_change_cycles as f64 / new_f.value()) + self.wake
    }
}

/// One PIM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Index on the board (0 is the controller by convention).
    pub id: usize,
    mode: Mode,
    frequency: Hertz,
    mode_power: ModePower,
    latency: TransitionLatency,
    /// Simulated time until which the chip is unavailable because a
    /// transition is in flight.
    busy_until: Seconds,
    /// Fail-stop fault flag: a faulted chip sits at its standby floor and
    /// ignores mode/frequency commands until it recovers.
    faulted: bool,
    /// Count of mode transitions performed (for overhead ablations).
    transitions: u64,
    /// Count of frequency changes performed.
    freq_changes: u64,
}

impl Processor {
    /// A chip in standby at the given initial frequency setting.
    pub fn new(
        id: usize,
        frequency: Hertz,
        mode_power: ModePower,
        latency: TransitionLatency,
    ) -> Self {
        Self {
            id,
            mode: Mode::Standby,
            frequency,
            mode_power,
            latency,
            busy_until: Seconds::ZERO,
            faulted: false,
            transitions: 0,
            freq_changes: 0,
        }
    }

    /// Current mode.
    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current clock frequency setting.
    #[inline]
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Transitions performed so far.
    #[inline]
    pub fn transition_count(&self) -> u64 {
        self.transitions
    }

    /// Frequency changes performed so far.
    #[inline]
    pub fn freq_change_count(&self) -> u64 {
        self.freq_changes
    }

    /// Is the chip free to compute at time `t` (no transition in flight,
    /// not faulted)?
    pub fn available_at(&self, t: Seconds) -> bool {
        !self.faulted && t.value() >= self.busy_until.value()
    }

    /// Whether the chip is currently failed-stop.
    #[inline]
    pub fn is_faulted(&self) -> bool {
        self.faulted
    }

    /// Inject or clear a fail-stop fault at time `t`. Faulting forces an
    /// immediate drop to standby (the watchdog clock-gates the chip);
    /// recovery leaves the chip in standby — the next governor command
    /// wakes it through the ordinary FPGA sequence, so recovery latency is
    /// visible at the next slot boundary, not instantaneous.
    pub fn set_fault(&mut self, faulted: bool, t: Seconds) {
        if faulted == self.faulted {
            return;
        }
        self.faulted = faulted;
        if faulted {
            if self.mode != Mode::Standby {
                self.mode = Mode::Standby;
                self.transitions += 1;
            }
        } else {
            // A recovered chip is ready for commands from `t` onward.
            self.busy_until = self.busy_until.max(t);
        }
    }

    /// Instantaneous power draw in the current mode (uses the full Eq. 4
    /// frequency scaling for active mode via the supplied `active_power`
    /// closure when querying the board; here the chip reports its
    /// datasheet mode power scaled linearly with frequency for Active).
    pub fn power(&self, calibration_f: Hertz) -> Watts {
        chip_power(self.mode, self.frequency, &self.mode_power, calibration_f)
    }

    /// Command: change mode at time `t`. Returns the latency incurred.
    /// A faulted chip ignores the command (it is pinned at standby).
    pub fn set_mode(&mut self, mode: Mode, t: Seconds) -> Seconds {
        if self.faulted || mode == self.mode {
            return Seconds::ZERO;
        }
        let latency = match (self.mode, mode) {
            (Mode::Standby, Mode::Active) | (Mode::Sleep, Mode::Active) => self.latency.wake,
            // Dropping to a low-power state is immediate (clock gate).
            _ => Seconds::ZERO,
        };
        self.mode = mode;
        self.transitions += 1;
        self.busy_until = seconds(t.value().max(self.busy_until.value()) + latency.value());
        latency
    }

    /// Command: change frequency at time `t` (the FPGA write sequence).
    /// The chip passes through standby and wakes at the new clock. A
    /// faulted chip ignores the command.
    pub fn set_frequency(&mut self, f: Hertz, t: Seconds) -> Seconds {
        if self.faulted || (f.value() - self.frequency.value()).abs() < 1e-6 {
            return Seconds::ZERO;
        }
        assert!(f.value() > 0.0, "use set_mode(Standby) to stop the clock");
        let latency = self.latency.frequency_change(f);
        self.frequency = f;
        self.freq_changes += 1;
        self.busy_until = seconds(t.value().max(self.busy_until.value()) + latency.value());
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Processor {
        Processor::new(
            1,
            Hertz::from_mhz(20.0),
            ModePower::M32RD,
            TransitionLatency::pama(),
        )
    }

    #[test]
    fn starts_in_standby() {
        let p = chip();
        assert_eq!(p.mode(), Mode::Standby);
        assert!((p.power(Hertz::from_mhz(80.0)).value() - 0.0066).abs() < 1e-12);
    }

    #[test]
    fn active_power_scales_with_frequency() {
        let mut p = chip();
        p.set_mode(Mode::Active, Seconds::ZERO);
        let p20 = p.power(Hertz::from_mhz(80.0));
        assert!((p20.value() - 0.546 / 4.0).abs() < 1e-9);
        p.set_frequency(Hertz::from_mhz(80.0), Seconds::ZERO);
        let p80 = p.power(Hertz::from_mhz(80.0));
        assert!((p80.value() - 0.546).abs() < 1e-9);
    }

    #[test]
    fn sleep_power_matches_datasheet() {
        let mut p = chip();
        p.set_mode(Mode::Sleep, Seconds::ZERO);
        assert!((p.power(Hertz::from_mhz(80.0)).value() - 0.393).abs() < 1e-12);
    }

    #[test]
    fn wake_has_latency_but_gating_does_not() {
        let mut p = chip();
        let up = p.set_mode(Mode::Active, seconds(1.0));
        assert!(up.value() > 0.0);
        assert!(!p.available_at(seconds(1.0)));
        assert!(p.available_at(seconds(1.0 + 0.001)));
        let down = p.set_mode(Mode::Standby, seconds(2.0));
        assert_eq!(down, Seconds::ZERO);
    }

    #[test]
    fn frequency_change_costs_more_than_wake() {
        let lat = TransitionLatency::pama();
        let fc = lat.frequency_change(Hertz::from_mhz(20.0));
        assert!(fc.value() > lat.wake.value());
        // 10 cycles at 20 MHz = 0.5 µs on top of the wake.
        assert!((fc.value() - (100e-6 + 0.5e-6)).abs() < 1e-9);
    }

    #[test]
    fn same_state_commands_are_free() {
        let mut p = chip();
        assert_eq!(p.set_mode(Mode::Standby, Seconds::ZERO), Seconds::ZERO);
        assert_eq!(
            p.set_frequency(Hertz::from_mhz(20.0), Seconds::ZERO),
            Seconds::ZERO
        );
        assert_eq!(p.transition_count(), 0);
        assert_eq!(p.freq_change_count(), 0);
    }

    #[test]
    fn fault_forces_standby_and_blocks_commands() {
        let mut p = chip();
        p.set_mode(Mode::Active, Seconds::ZERO);
        p.set_fault(true, seconds(1.0));
        assert!(p.is_faulted());
        assert_eq!(p.mode(), Mode::Standby);
        assert!(!p.available_at(seconds(100.0)));
        // Commands bounce off a faulted chip with no latency and no state
        // change.
        assert_eq!(p.set_mode(Mode::Active, seconds(2.0)), Seconds::ZERO);
        assert_eq!(
            p.set_frequency(Hertz::from_mhz(80.0), seconds(2.0)),
            Seconds::ZERO
        );
        assert_eq!(p.mode(), Mode::Standby);
        assert_eq!(p.frequency(), Hertz::from_mhz(20.0));
    }

    #[test]
    fn recovery_leaves_standby_until_commanded() {
        let mut p = chip();
        p.set_fault(true, seconds(1.0));
        p.set_fault(false, seconds(5.0));
        assert!(!p.is_faulted());
        assert_eq!(p.mode(), Mode::Standby);
        assert!(p.available_at(seconds(5.0)));
        let lat = p.set_mode(Mode::Active, seconds(6.0));
        assert!(lat.value() > 0.0, "wake goes through the normal sequence");
        assert_eq!(p.mode(), Mode::Active);
    }

    #[test]
    fn counters_track_commands() {
        let mut p = chip();
        p.set_mode(Mode::Active, Seconds::ZERO);
        p.set_frequency(Hertz::from_mhz(40.0), Seconds::ZERO);
        p.set_frequency(Hertz::from_mhz(80.0), Seconds::ZERO);
        p.set_mode(Mode::Standby, Seconds::ZERO);
        assert_eq!(p.transition_count(), 2);
        assert_eq!(p.freq_change_count(), 2);
    }
}
