//! The Weighted Power Usage Function (Eq. 7) and its inputs.
//!
//! `WPUF(t) = u(t)·w(t)` combines the expected event-rate schedule `u(t)`
//! (events per second that trigger computation) with a user weight `w(t)`
//! that emphasizes parts of the period — the paper's example is weighting
//! commute hours in a traffic monitor. The WPUF is a *shape*, not yet a
//! power: Eq. 8 rescales it so total dissipation balances total supply.

use crate::series::PowerSeries;
use serde::{Deserialize, Serialize};

/// Event-rate schedule plus weight function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// Expected event rate `u(t)` (events/s per slot).
    pub event_rate: PowerSeries,
    /// Weight `w(t)` (dimensionless, ≥ 0).
    pub weight: PowerSeries,
}

impl DemandModel {
    /// Build, validating alignment and non-negativity.
    pub fn new(event_rate: PowerSeries, weight: PowerSeries) -> Self {
        assert_eq!(
            event_rate.len(),
            weight.len(),
            "event rate and weight must share slotting"
        );
        assert!(
            event_rate.values().iter().all(|&v| v >= 0.0),
            "event rates must be non-negative"
        );
        assert!(
            weight.values().iter().all(|&v| v >= 0.0),
            "weights must be non-negative"
        );
        Self { event_rate, weight }
    }

    /// Unweighted demand (`w ≡ 1`).
    pub fn unweighted(event_rate: PowerSeries) -> Self {
        let weight = PowerSeries::constant(event_rate.slot_width(), event_rate.len(), 1.0);
        Self::new(event_rate, weight)
    }

    /// Eq. 7: the weighted power-usage shape.
    pub fn wpuf(&self) -> PowerSeries {
        self.event_rate.pointwise_mul(&self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::seconds;

    #[test]
    fn wpuf_is_pointwise_product() {
        let u = PowerSeries::new(seconds(1.0), vec![2.0, 4.0, 0.0]);
        let w = PowerSeries::new(seconds(1.0), vec![1.0, 0.5, 3.0]);
        let d = DemandModel::new(u, w);
        assert_eq!(d.wpuf().values(), &[2.0, 2.0, 0.0]);
    }

    #[test]
    fn unweighted_uses_unit_weight() {
        let u = PowerSeries::new(seconds(1.0), vec![2.0, 4.0]);
        let d = DemandModel::unweighted(u.clone());
        assert_eq!(d.wpuf(), u);
    }

    #[test]
    fn weight_emphasizes_commute_hours() {
        // The paper's traffic-monitor example: same event rate all day,
        // double weight during two commute windows.
        let u = PowerSeries::constant(seconds(1.0), 8, 1.0);
        let w = PowerSeries::new(seconds(1.0), vec![1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 1.0]);
        let d = DemandModel::new(u, w);
        let shape = d.wpuf();
        assert_eq!(shape.get(1), 2.0);
        assert_eq!(shape.get(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rates() {
        let u = PowerSeries::new(seconds(1.0), vec![-1.0]);
        let w = PowerSeries::constant(seconds(1.0), 1, 1.0);
        DemandModel::new(u, w);
    }
}
