//! Ablation bench: Algorithm 2's Pareto pruning (lines 3–5). Measures
//! table construction and lookup with and without pruning, and reports the
//! size reduction — the design choice DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_core::params::ParetoTable;
use dpm_core::platform::Platform;
use dpm_core::units::{watts, Hertz};
use std::hint::black_box;

/// A platform variant with a denser parameter space, to show the pruning
/// payoff grows with the space (the paper's future-work direction of
/// per-processor settings explodes it further).
fn dense_platform(workers: usize, freqs: usize) -> Platform {
    let mut p = Platform::pama();
    p.processors = workers + 1;
    p.reserved = 1;
    p.frequencies = (1..=freqs)
        .map(|i| Hertz::from_mhz(80.0 * i as f64 / freqs as f64))
        .collect();
    p.power = dpm_core::model::PowerModel::calibrated(
        dpm_core::model::ModePower::M32RD,
        Hertz::from_mhz(80.0),
        p.v_max,
        0.0,
        p.processors,
    )
    .expect("dense platform calibration constants are valid");
    p
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto/build");
    for (workers, freqs) in [(7usize, 3usize), (15, 8), (31, 16), (63, 32)] {
        let platform = dense_platform(workers, freqs);
        let pruned = ParetoTable::build(&platform).unwrap();
        println!(
            "[pareto] {workers}w x {freqs}f: {} raw pairs -> {} on frontier ({:.0}% pruned)",
            pruned.raw_count(),
            pruned.frontier().len(),
            100.0 * (1.0 - pruned.frontier().len() as f64 / pruned.raw_count() as f64)
        );
        group.bench_with_input(
            BenchmarkId::new("pruned", format!("{workers}x{freqs}")),
            &platform,
            |b, p| b.iter(|| black_box(ParetoTable::build(p))),
        );
        group.bench_with_input(
            BenchmarkId::new("unpruned", format!("{workers}x{freqs}")),
            &platform,
            |b, p| b.iter(|| black_box(ParetoTable::build_unpruned(p))),
        );
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto/lookup");
    for (workers, freqs) in [(7usize, 3usize), (63, 32)] {
        let platform = dense_platform(workers, freqs);
        let pruned = ParetoTable::build(&platform).unwrap();
        let unpruned = ParetoTable::build_unpruned(&platform).unwrap();
        let budgets: Vec<_> = (0..256).map(|i| watts(0.02 * i as f64)).collect();
        group.bench_with_input(
            BenchmarkId::new("binary_search", format!("{workers}x{freqs}")),
            &budgets,
            |b, budgets| {
                b.iter(|| {
                    for &w in budgets {
                        black_box(pruned.best_within(w));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("linear_scan", format!("{workers}x{freqs}")),
            &budgets,
            |b, budgets| {
                b.iter(|| {
                    for &w in budgets {
                        black_box(unpruned.best_within_scan(w));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_build, bench_lookup
}
criterion_main!(benches);
