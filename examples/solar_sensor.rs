//! Governor shoot-out on a noisy solar-powered sensor node.
//!
//! Uses the first-principles solar-orbit source (penumbra ramps +
//! multiplicative weather noise), Poisson event arrivals, and a mid-run
//! supply fault, then runs every governor in the repository over the same
//! environment and prints a comparison table.
//!
//! ```sh
//! cargo run --example solar_sensor
//! ```

use dpm_baselines::{GreedyGovernor, StaticGovernor, TimeoutGovernor};
use dpm_bench::experiments;
use dpm_core::prelude::*;
use dpm_sim::prelude::*;
use dpm_workloads::OrbitScenarioBuilder;

fn build_sim(
    platform: &Platform,
    scenario: &dpm_workloads::Scenario,
    seed: u64,
) -> Result<Simulation, SimError> {
    let orbit = SolarOrbitSource {
        period: scenario.charging.period(),
        sunlit_fraction: 0.5,
        panel_power: watts(2.36),
        penumbra: seconds(2.0),
    };
    let mut sim = Simulation::new(
        platform.clone(),
        Box::new(NoisySource::new(orbit, 0.15, platform.tau, seed)),
        Box::new(PoissonGenerator::new(
            scenario.event_rates(platform),
            seed ^ 0xBEEF,
        )),
        scenario.initial_charge,
        SimConfig {
            periods: 6,
            ..SimConfig::default()
        },
    )?;
    // A 20 s partial panel fault in orbit 3.
    sim.schedule(
        seconds(2.2 * 57.6),
        Disturbance::SupplyScale {
            factor: 0.3,
            duration: seconds(20.0),
        },
    );
    Ok(sim)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::pama();
    let scenario = OrbitScenarioBuilder::new("solar-sensor")
        .demand_base(0.5)
        .demand_peak(2, 1.4)
        .demand_peak(8, 1.0)
        .initial_charge(8.0)
        .build()?;

    println!(
        "environment: noisy solar orbit, Poisson events (~{:.0}/orbit), panel fault in orbit 3\n",
        scenario.events_per_period(&platform)
    );

    let mut reports: Vec<SimReport> = Vec::new();

    // The proposed controller plans on the *expected* (clean) schedules and
    // must absorb the noise and the fault via Algorithm 3.
    let allocation = experiments::initial_allocation(&platform, &scenario)?;
    let mut proposed =
        DpmController::new(platform.clone(), &allocation, scenario.charging.clone())?;
    reports.push(build_sim(&platform, &scenario, 7)?.run(&mut proposed)?);

    let mut statik = StaticGovernor::full_power(&platform)?;
    reports.push(build_sim(&platform, &scenario, 7)?.run(&mut statik)?);

    let point = OperatingPoint::new(
        platform.workers(),
        platform.f_max(),
        platform
            .voltage_for(platform.f_max())
            .ok_or("platform cannot supply its own f_max")?,
    );
    let mut timeout = TimeoutGovernor::new(point, 2)?;
    reports.push(build_sim(&platform, &scenario, 7)?.run(&mut timeout)?);

    let mut greedy = GreedyGovernor::new(platform.clone(), 4.0)?;
    reports.push(build_sim(&platform, &scenario, 7)?.run(&mut greedy)?);

    println!(
        "{:<14} {:>10} {:>14} {:>7} {:>8} {:>9}",
        "governor", "wasted(J)", "undersup.(J)", "jobs", "util(%)", "drops"
    );
    for r in &reports {
        println!(
            "{:<14} {:>10.2} {:>14.2} {:>7} {:>8.1} {:>9}",
            r.governor,
            r.wasted,
            r.undersupplied,
            r.jobs_done,
            100.0 * r.utilization(),
            r.dropped
        );
    }

    let proposed_report = &reports[0];
    let static_report = &reports[1];
    println!(
        "\nproposed vs static: {:.1}x less waste, undersupply {:.2} J vs {:.2} J",
        static_report.wasted / proposed_report.wasted.max(1e-9),
        proposed_report.undersupplied,
        static_report.undersupplied,
    );
    Ok(())
}
