//! The paper's static comparison algorithm (§5):
//!
//! > "Since no overhead for changing the number of processors or frequency
//! > is assumed, the system is turned off while there is no input data to
//! > process. If the externally supplied energy is more than the usage,
//! > then the difference is charged to a rechargeable battery. If more
//! > energy is used than supplied, then the difference is supplied from
//! > battery."
//!
//! I.e. event-driven on/off at a fixed operating point, with no awareness
//! of the battery state or the charging schedule — which is precisely why
//! it wastes charge when the battery pins at `C_max` during quiet sunlit
//! stretches and browns out in busy eclipses.

use dpm_core::error::DpmError;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::OperatingPoint;
use dpm_core::platform::Platform;

/// Fixed-point on-demand governor.
#[derive(Debug, Clone)]
pub struct StaticGovernor {
    point: OperatingPoint,
}

impl StaticGovernor {
    /// Run at `point` whenever there is work.
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] if `point` is off — a static
    /// governor that never does work is a misconfiguration.
    pub fn new(point: OperatingPoint) -> Result<Self, DpmError> {
        if point.is_off() {
            return Err(DpmError::InvalidParameter {
                name: "point",
                reason: "the static point must do work".into(),
            });
        }
        Ok(Self { point })
    }

    /// The paper's configuration: every worker at the maximum frequency.
    ///
    /// # Errors
    /// [`DpmError::NoOperatingPoint`] if the platform's V/f map cannot
    /// supply its own maximum frequency.
    pub fn full_power(platform: &Platform) -> Result<Self, DpmError> {
        let f = platform.f_max();
        let v = platform.voltage_for(f).ok_or_else(|| {
            DpmError::NoOperatingPoint(format!("no supply voltage for f_max = {f}"))
        })?;
        Self::new(OperatingPoint::new(platform.workers(), f, v))
    }

    /// The configured operating point.
    pub fn point(&self) -> OperatingPoint {
        self.point
    }
}

impl Governor for StaticGovernor {
    fn name(&self) -> &str {
        "static"
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        Ok(if obs.backlog > 0 {
            self.point
        } else {
            OperatingPoint::OFF
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::{joules, Joules, Seconds};

    fn obs(backlog: usize) -> SlotObservation {
        SlotObservation {
            slot: 0,
            time: Seconds::ZERO,
            battery: joules(8.0),
            used_last: Joules::ZERO,
            supplied_last: Joules::ZERO,
            backlog,
        }
    }

    #[test]
    fn off_when_idle_on_when_busy() {
        let mut g = StaticGovernor::full_power(&Platform::pama()).unwrap();
        assert!(g.decide(&obs(0)).unwrap().is_off());
        let p = g.decide(&obs(3)).unwrap();
        assert_eq!(p.workers, 7);
        assert_eq!(p.frequency, dpm_core::units::Hertz::from_mhz(80.0));
    }

    #[test]
    fn ignores_battery_state() {
        let mut g = StaticGovernor::full_power(&Platform::pama()).unwrap();
        let mut low = obs(1);
        low.battery = joules(0.6); // nearly empty — static doesn't care
        assert!(!g.decide(&low).unwrap().is_off());
    }

    #[test]
    fn rejects_off_point() {
        use dpm_core::error::DpmError;
        assert!(matches!(
            StaticGovernor::new(OperatingPoint::OFF),
            Err(DpmError::InvalidParameter { name: "point", .. })
        ));
    }
}
