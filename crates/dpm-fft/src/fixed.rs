//! Q15 fixed-point arithmetic.
//!
//! The M32R/D has no floating-point unit, so the FORTE signal chain runs in
//! 16-bit fixed point ("we implemented fixed-point FFT operations", §5).
//! [`Q15`] is the classic signed 1.15 format: values in `[−1, 1)` with a
//! 2⁻¹⁵ step. All operations saturate rather than wrap — the behaviour DSP
//! code relies on to keep a clipped sample from flipping sign.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A signed 1.15 fixed-point number in `[−1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Q15(pub i16);

impl Q15 {
    /// Zero.
    pub const ZERO: Self = Self(0);
    /// The largest representable value, `1 − 2⁻¹⁵`.
    pub const MAX: Self = Self(i16::MAX);
    /// The most negative representable value, `−1`.
    pub const MIN: Self = Self(i16::MIN);
    /// One half.
    pub const HALF: Self = Self(1 << 14);

    /// Quantize a float in `[−1, 1)`; saturates outside.
    pub fn from_f64(x: f64) -> Self {
        let scaled = (x * 32768.0).round();
        Self(scaled.clamp(i16::MIN as f64, i16::MAX as f64) as i16)
    }

    /// Back to floating point.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / 32768.0
    }

    /// Raw bits.
    #[inline]
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Saturating addition.
    #[inline]
    pub fn sat_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn sat_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Saturating Q15 × Q15 → Q15 multiply with rounding:
    /// `(a·b + 2¹⁴) >> 15`, the standard fractional multiply.
    #[inline]
    pub fn sat_mul(self, rhs: Self) -> Self {
        // i16×i16 fits i32; only −1×−1 overflows the Q15 range after shift.
        let p = (self.0 as i32 * rhs.0 as i32 + (1 << 14)) >> 15;
        Self(p.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Arithmetic shift right (divide by 2ᵏ, rounding toward −∞); the FFT
    /// uses `>> 1` per stage to prevent overflow growth.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, k: u32) -> Self {
        Self(self.0 >> k)
    }

    /// Absolute value, saturating (`|MIN|` clamps to `MAX`).
    #[inline]
    pub fn sat_abs(self) -> Self {
        Self(self.0.checked_abs().unwrap_or(i16::MAX))
    }
}

impl Add for Q15 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.sat_add(rhs)
    }
}

impl Sub for Q15 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.sat_sub(rhs)
    }
}

impl Mul for Q15 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.sat_mul(rhs)
    }
}

impl Neg for Q15 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0.checked_neg().unwrap_or(i16::MAX))
    }
}

impl fmt::Display for Q15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5}", self.to_f64())
    }
}

/// A complex Q15 sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CQ15 {
    /// Real part.
    pub re: Q15,
    /// Imaginary part.
    pub im: Q15,
}

impl CQ15 {
    /// Zero.
    pub const ZERO: Self = Self {
        re: Q15::ZERO,
        im: Q15::ZERO,
    };

    /// Build from parts.
    #[inline]
    pub const fn new(re: Q15, im: Q15) -> Self {
        Self { re, im }
    }

    /// Quantize a complex float.
    pub fn from_f64(re: f64, im: f64) -> Self {
        Self::new(Q15::from_f64(re), Q15::from_f64(im))
    }

    /// Back to floats.
    pub fn to_f64(self) -> (f64, f64) {
        (self.re.to_f64(), self.im.to_f64())
    }

    /// Saturating complex add.
    #[inline]
    pub fn sat_add(self, rhs: Self) -> Self {
        Self::new(self.re.sat_add(rhs.re), self.im.sat_add(rhs.im))
    }

    /// Saturating complex subtract.
    #[inline]
    pub fn sat_sub(self, rhs: Self) -> Self {
        Self::new(self.re.sat_sub(rhs.re), self.im.sat_sub(rhs.im))
    }

    /// Saturating complex multiply:
    /// `(a+bi)(c+di) = (ac − bd) + (ad + bc)i`, each product rounded.
    ///
    /// Intermediate sums are kept in i32 so only the final result
    /// saturates.
    #[inline]
    pub fn sat_mul(self, rhs: Self) -> Self {
        let (a, b) = (self.re.0 as i32, self.im.0 as i32);
        let (c, d) = (rhs.re.0 as i32, rhs.im.0 as i32);
        let re = (a * c - b * d + (1 << 14)) >> 15;
        let im = (a * d + b * c + (1 << 14)) >> 15;
        Self::new(
            Q15(re.clamp(i16::MIN as i32, i16::MAX as i32) as i16),
            Q15(im.clamp(i16::MIN as i32, i16::MAX as i32) as i16),
        )
    }

    /// Halve both parts (per-stage FFT scaling).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, k: u32) -> Self {
        Self::new(self.re.shr(k), self.im.shr(k))
    }

    /// Squared magnitude as an i32 (exact; fits because each part ≤ 2¹⁵).
    #[inline]
    pub fn mag_sq_raw(self) -> i64 {
        let (a, b) = (self.re.0 as i64, self.im.0 as i64);
        a * a + b * b
    }

    /// Squared magnitude as a float in `[0, 2)`.
    pub fn mag_sq(self) -> f64 {
        self.mag_sq_raw() as f64 / (32768.0 * 32768.0)
    }

    /// Complex conjugate (saturating negation of the imaginary part).
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_quantum() {
        for &x in &[0.0, 0.5, -0.5, 0.999, -1.0, 0.123456] {
            let q = Q15::from_f64(x);
            assert!((q.to_f64() - x).abs() <= 1.0 / 32768.0, "{x}");
        }
    }

    #[test]
    fn saturation_on_conversion() {
        assert_eq!(Q15::from_f64(2.0), Q15::MAX);
        assert_eq!(Q15::from_f64(-2.0), Q15::MIN);
    }

    #[test]
    fn add_saturates() {
        assert_eq!(Q15::MAX + Q15::MAX, Q15::MAX);
        assert_eq!(Q15::MIN + Q15::MIN, Q15::MIN);
        assert_eq!(Q15::HALF + Q15::HALF + Q15::HALF, Q15::MAX);
    }

    #[test]
    fn sub_saturates() {
        assert_eq!(Q15::MIN - Q15::MAX, Q15::MIN);
        assert_eq!(Q15::MAX - Q15::MIN, Q15::MAX);
    }

    #[test]
    fn mul_halves() {
        let h = Q15::HALF;
        let q = h * h;
        assert!((q.to_f64() - 0.25).abs() <= 1.0 / 32768.0);
    }

    #[test]
    fn mul_minus_one_squared_saturates() {
        // (−1)·(−1) = +1 is unrepresentable; must clamp to MAX, not wrap.
        assert_eq!(Q15::MIN * Q15::MIN, Q15::MAX);
    }

    #[test]
    fn neg_min_saturates() {
        assert_eq!(-Q15::MIN, Q15::MAX);
        assert_eq!(Q15::MIN.sat_abs(), Q15::MAX);
    }

    #[test]
    fn shr_scales() {
        assert_eq!(Q15::HALF.shr(1).to_f64(), 0.25);
    }

    #[test]
    fn complex_multiply_matches_float() {
        let a = CQ15::from_f64(0.3, -0.4);
        let b = CQ15::from_f64(-0.5, 0.2);
        let c = a.sat_mul(b);
        let (re, im) = c.to_f64();
        // (0.3−0.4i)(−0.5+0.2i) = (−0.15+0.08) + (0.06+0.20)i
        assert!((re - (-0.07)).abs() < 3e-4, "{re}");
        assert!((im - 0.26).abs() < 3e-4, "{im}");
    }

    #[test]
    fn complex_mag_sq() {
        let c = CQ15::from_f64(0.6, 0.8);
        assert!((c.mag_sq() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn complex_conj() {
        let c = CQ15::from_f64(0.1, 0.2);
        let (re, im) = c.conj().to_f64();
        assert!((re - 0.1).abs() < 1e-4 && (im + 0.2).abs() < 1e-4);
    }

    #[test]
    fn rounding_is_symmetric_enough() {
        // Multiplying by +1-ish keeps values stable.
        let near_one = Q15::MAX;
        let x = Q15::from_f64(0.25);
        let y = x * near_one;
        assert!((y.to_f64() - 0.25).abs() < 2.0 / 32768.0);
    }
}
