//! Telemetry overhead bench: the cost of a disabled recorder on the
//! instrumented decide path must be near zero (the ISSUE's acceptance
//! bar), and the enabled cost must stay small enough to leave on during
//! experiments. Three groups:
//!
//! - `telemetry/micro` — raw per-op cost of `incr`/`observe`/`event`/
//!   `span` for a disabled vs. enabled recorder.
//! - `telemetry/decide` — a full [`DpmController::decide`] slot with
//!   telemetry off vs. on (the real regression guard: the decide path is
//!   instrumented unconditionally).
//! - `telemetry/snapshot` — serializing a populated recorder to JSONL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_bench::experiments;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::platform::Platform;
use dpm_core::runtime::DpmController;
use dpm_core::units::{joules, seconds};
use dpm_telemetry::Recorder;
use dpm_workloads::scenarios;
use std::hint::black_box;

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/micro");
    for (label, rec) in [
        ("disabled", Recorder::disabled()),
        ("enabled", Recorder::enabled("bench")),
    ] {
        group.bench_with_input(BenchmarkId::new("incr", label), &rec, |b, r| {
            b.iter(|| r.incr(black_box("bench.counter"), 1))
        });
        group.bench_with_input(BenchmarkId::new("observe", label), &rec, |b, r| {
            b.iter(|| r.observe(black_box("bench.hist"), black_box(3.5)))
        });
        group.bench_with_input(BenchmarkId::new("event", label), &rec, |b, r| {
            b.iter(|| r.event(black_box("bench.event"), Some(7), 33.6, &[("x", 1.0)]))
        });
        group.bench_with_input(BenchmarkId::new("span", label), &rec, |b, r| {
            b.iter(|| drop(black_box(r.span("bench.span"))))
        });
    }
    group.finish();
}

fn bench_decide(c: &mut Criterion) {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let alloc = experiments::initial_allocation(&platform, &s).unwrap();

    let mut group = c.benchmark_group("telemetry/decide");
    for (label, rec) in [
        ("disabled", Recorder::disabled()),
        ("enabled", Recorder::enabled("bench")),
    ] {
        let controller = DpmController::new(platform.clone(), &alloc, s.charging.clone())
            .unwrap()
            .with_telemetry(rec);
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &controller,
            |b, base| {
                b.iter(|| {
                    let mut g = base.clone();
                    let obs = SlotObservation {
                        slot: 1,
                        time: seconds(platform.tau.value()),
                        battery: s.initial_charge,
                        used_last: joules(38.0),
                        supplied_last: joules(40.0),
                        backlog: 0,
                    };
                    black_box(g.decide(&obs))
                })
            },
        );
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let rec = Recorder::enabled("bench");
    for i in 0..1000u64 {
        rec.incr("bench.counter", 1);
        rec.observe("bench.hist", i as f64 * 0.1);
        rec.event("bench.event", Some(i), i as f64, &[("v", i as f64)]);
    }
    let mut group = c.benchmark_group("telemetry/snapshot");
    group.bench_function("to_jsonl_1k_events", |b| {
        b.iter(|| black_box(rec.to_jsonl().len()))
    });
    group.finish();
}

/// Short measurement windows: these benches track regressions, not
/// microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_micro, bench_decide, bench_snapshot
}
criterion_main!(benches);
