//! System-parameter computation (§4.2): choosing `(n, f, v)` for an
//! allocated power.
//!
//! * [`analysis`] — numerical validation of the Eq. 12–17 marginal
//!   derivations (performance-vs-power curves along each knob).
//! * [`continuous`] — the closed-form continuous-space policy of Eqs. 12–18
//!   (which of frequency vs. processor count to grow, and the four-case
//!   operating-point formula).
//! * [`pareto`] — the `(Power, Perf)` pair table over discrete `(n, f)` and
//!   the dominance pruning of Algorithm 2 lines 1–5.
//! * [`scheduler`] — Algorithm 2 proper: walking the period in `τ` steps,
//!   tracking the planned-vs-selected energy difference, and charging switch
//!   overheads against performance gains.
//! * [`hetero`] — the paper's §6 future-work extensions: per-processor
//!   frequencies and heterogeneous processor pools.

pub mod analysis;
pub mod continuous;
pub mod hetero;
pub mod pareto;
pub mod scheduler;

pub use continuous::{continuous_operating_point, marginal_gain_ratio, GrowthPreference};
pub use pareto::{ParetoTable, RatedPoint};
pub use scheduler::{ParameterSchedule, ParameterScheduler, ScheduledSlot};

use crate::units::{Hertz, Volts};
use serde::{Deserialize, Serialize};

/// A homogeneous operating point: `n` workers at a common `(f, v)`.
///
/// `workers = 0` means the whole board (controller included) sits in
/// standby; `frequency`/`voltage` are irrelevant then and normalized to
/// zero so `OFF` compares equal regardless of provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Active worker processors.
    pub workers: usize,
    /// Common clock frequency.
    pub frequency: Hertz,
    /// Common supply voltage.
    pub voltage: Volts,
}

impl OperatingPoint {
    /// Everything off (standby floor only).
    pub const OFF: Self = Self {
        workers: 0,
        frequency: Hertz(0.0),
        voltage: Volts(0.0),
    };

    /// Build an active point.
    pub fn new(workers: usize, frequency: Hertz, voltage: Volts) -> Self {
        if workers == 0 {
            Self::OFF
        } else {
            Self {
                workers,
                frequency,
                voltage,
            }
        }
    }

    /// Whether anything is running.
    #[inline]
    pub fn is_off(&self) -> bool {
        self.workers == 0
    }

    /// Do two points differ in processor count / frequency (the two axes
    /// the overhead model charges for)?
    pub fn diff(&self, other: &Self) -> (bool, bool) {
        (
            self.workers != other.workers,
            (self.frequency.value() - other.frequency.value()).abs() > 1e-6,
        )
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_off() {
            write!(f, "off")
        } else {
            write!(
                f,
                "{}p @ {:.0} MHz / {:.2} V",
                self.workers,
                self.frequency.mhz(),
                self.voltage.value()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::volts;

    #[test]
    fn zero_workers_normalizes_to_off() {
        let p = OperatingPoint::new(0, Hertz::from_mhz(80.0), volts(3.3));
        assert_eq!(p, OperatingPoint::OFF);
        assert!(p.is_off());
    }

    #[test]
    fn diff_reports_changed_axes() {
        let a = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));
        let b = OperatingPoint::new(3, Hertz::from_mhz(80.0), volts(3.3));
        assert_eq!(a.diff(&b), (false, true));
        let c = OperatingPoint::new(5, Hertz::from_mhz(80.0), volts(3.3));
        assert_eq!(b.diff(&c), (true, false));
        assert_eq!(a.diff(&c), (true, true));
        assert_eq!(a.diff(&a), (false, false));
    }

    #[test]
    fn display_formats() {
        let p = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));
        assert_eq!(format!("{p}"), "3p @ 40 MHz / 3.30 V");
        assert_eq!(format!("{}", OperatingPoint::OFF), "off");
    }
}
