//! A client-side load generator: replay a `dpm-workloads` fleet
//! population against a running server as N concurrent sessions.
//!
//! Each session is one board of the fleet sampler — jittered initial
//! charge, a phase-rotated rate schedule, and a seeded fault plan — so
//! a loadgen run exercises the server with the same population the
//! batch fleet campaigns simulate. One session can optionally inject a
//! corrupt trace line mid-run to prove the online auditor kills it.
//!
//! Exit-code contract (consumed by CI):
//! - `0` — every session closed with a green audit;
//! - `1` — the requested corruption was detected (the expected outcome
//!   of a `--corrupt-session` run), or any clean session failed its
//!   audit or errored;
//! - `2` — corruption was requested but **not** detected: the
//!   unexpected outcome that must fail loudly.

use dpm_core::units::seconds;
use dpm_workloads::{board_spec, scenarios, FleetScenarioConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::error::ServeError;
use crate::protocol::{QueryKind, Request, Response, SessionSpec};

/// What one loadgen run should do.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent sessions to drive.
    pub sessions: usize,
    /// Workload scenario name.
    pub scenario: String,
    /// Governor arm for every session.
    pub governor: String,
    /// Charging periods per session.
    pub periods: usize,
    /// Master seed for the fleet population.
    pub seed: u64,
    /// Slots per advance request.
    pub chunk: u64,
    /// Inject a corrupt trace line into this session index mid-run.
    pub corrupt_session: Option<usize>,
    /// After the sessions finish (and before any shutdown), scrape the
    /// metrics plane, validate the exposition grammar and the session
    /// counters against this run's outcomes, and write the text here
    /// (`-` for stdout).
    pub metrics: Option<String>,
    /// Send `Shutdown` once every session completed.
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".to_string(),
            sessions: 3,
            scenario: "scenario-1".to_string(),
            governor: "proposed+safe".to_string(),
            periods: 1,
            seed: 42,
            chunk: 4,
            corrupt_session: None,
            metrics: None,
            shutdown: false,
        }
    }
}

/// How one driven session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    /// Closed normally; payload is the canonical audit verdict.
    Clean {
        /// Whether the end-of-stream audit was green.
        audit_ok: bool,
    },
    /// Killed by the online auditor.
    Killed,
}

/// A trace line guaranteed to break sequence monotonicity once any
/// event has been recorded in the session scope (the `serve.open`
/// marker takes seq 0 at open).
const CORRUPT_LINE: &str = "{\"Event\":{\"seq\":0,\"scope\":\"\",\
    \"name\":\"inject.corrupt\",\"slot\":null,\"time\":0.0,\
    \"fields\":[],\"detail\":null}}";

/// One NDJSON round trip.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    req: &Request,
) -> Result<Response, ServeError> {
    let line = serde_json::to_string(req).map_err(|e| ServeError::BadRequest(e.to_string()))?;
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut resp = String::new();
    if reader.read_line(&mut resp)? == 0 {
        return Err(ServeError::Io("server closed the connection".to_string()));
    }
    serde_json::from_str(&resp).map_err(|e| ServeError::BadRequest(format!("response: {e}")))
}

/// Drive one session to completion over its own connection.
fn drive_session(
    cfg: &LoadgenConfig,
    name: &str,
    spec: &SessionSpec,
    corrupt: bool,
) -> Result<Outcome, ServeError> {
    let stream = TcpStream::connect(&cfg.addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let session = name.to_string();

    let opened = exchange(
        &mut writer,
        &mut reader,
        &Request::Open {
            session: session.clone(),
            spec: spec.clone(),
        },
    )?;
    let total_slots = match opened {
        Response::Opened { total_slots, .. } => total_slots,
        Response::Error { message } => return Err(ServeError::Io(message)),
        other => return Err(ServeError::Io(format!("unexpected open reply: {other:?}"))),
    };

    let mut done = false;
    let mut injected = false;
    let mut slot = 0u64;
    while !done {
        if corrupt && !injected && slot >= total_slots / 2 {
            injected = true;
            let resp = exchange(
                &mut writer,
                &mut reader,
                &Request::InjectLine {
                    session: session.clone(),
                    line: CORRUPT_LINE.to_string(),
                },
            )?;
            match resp {
                Response::Killed { .. } => return Ok(Outcome::Killed),
                Response::Injected { .. } => {}
                other => {
                    return Err(ServeError::Io(format!(
                        "unexpected inject reply: {other:?}"
                    )))
                }
            }
        }
        let resp = exchange(
            &mut writer,
            &mut reader,
            &Request::Advance {
                session: session.clone(),
                slots: cfg.chunk.max(1),
            },
        )?;
        match resp {
            Response::Advanced {
                slot: s, done: d, ..
            } => {
                slot = s;
                done = d;
            }
            Response::Killed { .. } => return Ok(Outcome::Killed),
            other => {
                return Err(ServeError::Io(format!(
                    "unexpected advance reply: {other:?}"
                )))
            }
        }
    }

    for what in [QueryKind::Plan, QueryKind::Battery, QueryKind::Degradation] {
        let resp = exchange(
            &mut writer,
            &mut reader,
            &Request::Query {
                session: session.clone(),
                what,
            },
        )?;
        if let Response::Error { message } = resp {
            return Err(ServeError::Io(format!("query failed: {message}")));
        }
    }

    let resp = exchange(&mut writer, &mut reader, &Request::Close { session })?;
    match resp {
        Response::Closed { audit_ok, .. } => Ok(Outcome::Clean { audit_ok }),
        Response::Killed { .. } => Ok(Outcome::Killed),
        other => Err(ServeError::Io(format!("unexpected close reply: {other:?}"))),
    }
}

/// The fleet population as session specs: board `i` of the sampler.
fn population(cfg: &LoadgenConfig) -> Result<Vec<SessionSpec>, ServeError> {
    let scenario = scenarios::all()
        .into_iter()
        .find(|s| s.name == cfg.scenario)
        .ok_or_else(|| ServeError::UnknownScenario(cfg.scenario.clone()))?;
    let slots = scenario.charging.len();
    let tau = scenario.charging.slot_width();
    let horizon = seconds(cfg.periods as f64 * slots as f64 * tau.value());
    let fleet_cfg = FleetScenarioConfig::standard(horizon);
    Ok((0..cfg.sessions)
        .map(|i| {
            let board = board_spec(&scenario, cfg.seed, i, &fleet_cfg);
            SessionSpec {
                scenario: cfg.scenario.clone(),
                governor: cfg.governor.clone(),
                periods: cfg.periods,
                initial_charge_j: Some(board.initial_charge.value()),
                phase_slots: board.phase_slots,
                faults: board.faults.iter().map(|(t, d)| (t.value(), *d)).collect(),
            }
        })
        .collect())
}

/// Scrape the metrics plane and cross-check the server's session
/// counters against this run's outcomes. The checks are lower bounds —
/// the counters are cumulative over the server's lifetime, and other
/// clients may have contributed — so a clean run against a fresh server
/// matches exactly while a shared server still validates.
fn scrape_metrics(
    cfg: &LoadgenConfig,
    results: &[Result<Outcome, ServeError>],
) -> Result<String, ServeError> {
    let stream = TcpStream::connect(&cfg.addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let text = match exchange(&mut writer, &mut reader, &Request::Metrics)? {
        Response::Metrics { text } => text,
        other => {
            return Err(ServeError::Io(format!(
                "unexpected metrics reply: {other:?}"
            )))
        }
    };
    crate::metrics::validate(&text).map_err(|e| ServeError::Io(format!("bad exposition: {e}")))?;
    let closed = results
        .iter()
        .filter(|r| matches!(r, Ok(Outcome::Clean { .. })))
        .count() as f64;
    let killed = results
        .iter()
        .filter(|r| matches!(r, Ok(Outcome::Killed)))
        .count() as f64;
    let floors = [
        ("dpm_serve_sessions_opened_total", closed + killed),
        ("dpm_serve_sessions_closed_total", closed),
        ("dpm_serve_sessions_killed_total", killed),
    ];
    for (metric, floor) in floors {
        let value = crate::metrics::sample(&text, metric, &[])
            .ok_or_else(|| ServeError::Io(format!("scrape is missing {metric}")))?;
        if value < floor {
            return Err(ServeError::Io(format!(
                "{metric} is {value} but this run alone contributed {floor}"
            )));
        }
    }
    Ok(text)
}

/// Run the whole population concurrently and fold the outcomes into
/// the exit-code contract described in the module docs.
///
/// # Errors
/// Only configuration errors (unknown scenario) are `Err`; per-session
/// transport failures are folded into the exit code.
pub fn run(cfg: &LoadgenConfig) -> Result<i32, ServeError> {
    let specs = population(cfg)?;
    let results = crossbeam::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let corrupt = cfg.corrupt_session == Some(i);
                let name = format!("load-{i}");
                scope.spawn(move |_| drive_session(cfg, &name, spec, corrupt))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(ServeError::Io("session thread panicked".to_string())))
            })
            .collect::<Vec<_>>()
    })
    .map_err(|_| ServeError::Io("loadgen scope panicked".to_string()))?;

    // Scrape before any shutdown so the server is still answering.
    let mut metrics_failure: Option<String> = None;
    if let Some(path) = &cfg.metrics {
        match scrape_metrics(cfg, &results) {
            Ok(text) if path == "-" => print!("{text}"),
            Ok(text) => {
                if let Err(e) = std::fs::write(path, &text) {
                    metrics_failure = Some(format!("cannot write {path}: {e}"));
                }
            }
            Err(e) => metrics_failure = Some(e.to_string()),
        }
    }

    if cfg.shutdown {
        match TcpStream::connect(&cfg.addr) {
            Ok(stream) => match stream.try_clone() {
                Ok(read_half) => {
                    let mut reader = BufReader::new(read_half);
                    let mut writer = stream;
                    let _ = exchange(&mut writer, &mut reader, &Request::Shutdown);
                }
                Err(e) => eprintln!("loadgen: shutdown clone failed: {e}"),
            },
            Err(e) => eprintln!("loadgen: shutdown connect failed: {e}"),
        }
    }

    let mut code = 0;
    if let Some(msg) = metrics_failure {
        eprintln!("loadgen: metrics scrape failed: {msg}");
        code = 1;
    }
    let corrupt_detected = cfg
        .corrupt_session
        .and_then(|i| results.get(i))
        .map(|r| matches!(r, Ok(Outcome::Killed)));
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(Outcome::Clean { audit_ok: true }) => {}
            Ok(Outcome::Clean { audit_ok: false }) => {
                eprintln!("loadgen: session {i} closed with a failing audit");
                code = code.max(1);
            }
            Ok(Outcome::Killed) => {
                if cfg.corrupt_session == Some(i) {
                    eprintln!("loadgen: session {i} killed by the auditor (expected)");
                    code = code.max(1);
                } else {
                    eprintln!("loadgen: session {i} killed by the auditor (unexpected)");
                    code = code.max(1);
                }
            }
            Err(e) => {
                eprintln!("loadgen: session {i} failed: {e}");
                code = code.max(1);
            }
        }
    }
    if let Some(false) = corrupt_detected {
        eprintln!("loadgen: corruption was requested but never detected");
        return Ok(2);
    }
    Ok(code)
}
