//! Per-run human-readable reports over a parsed trace: replan and safety
//! activity, histogram quantiles, and an ASCII battery trajectory per
//! scope — the "what happened in this run" view that raw JSONL hides.

use crate::model::{split_scoped, Trace};
use dpm_telemetry::HistogramLine;
use std::fmt::Write as _;

/// Density ramp for the battery timeline, dimmest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";
/// Maximum timeline width in columns.
const TIMELINE_COLS: usize = 64;

/// Linearly-interpolated quantile from a histogram snapshot's bucket
/// counts.
///
/// Finds the bucket where the cumulative count crosses the continuous
/// rank `q * count` and interpolates linearly between the bucket's
/// edges, positioned by how far into the bucket's own count the rank
/// falls — the standard Prometheus `histogram_quantile` estimate, made
/// exact at the edges by tightening each bucket to the recorded
/// `[min, max]`: the first bucket's lower edge is `min`, the overflow
/// bucket's upper edge is `max`, and the result is clamped to
/// `[min, max]`. An empty histogram reports 0. `q` is clamped into
/// `[0, 1]`; a NaN `q` behaves as 0 (reporting `min`).
pub fn quantile(h: &HistogramLine, q: f64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = q * h.count as f64;
    if rank <= 0.0 {
        return h.min;
    }
    let mut seen = 0.0f64;
    for (i, &c) in h.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let in_bucket = c as f64;
        if seen + in_bucket >= rank {
            // Tighten the bucket edges to the observed range: no
            // observation sits below `min` or above `max`, so the
            // nominal bounds overstate the spread at the extremes.
            let lower = match i.checked_sub(1).and_then(|p| h.bounds.get(p)) {
                Some(&b) => b.max(h.min),
                None => h.min,
            };
            let upper = match h.bounds.get(i) {
                Some(&b) => b.min(h.max),
                None => h.max, // overflow bucket
            };
            let frac = ((rank - seen) / in_bucket).clamp(0.0, 1.0);
            let value = lower + frac * (upper - lower);
            return value.clamp(h.min, h.max);
        }
        seen += in_bucket;
    }
    h.max
}

/// Downsample `values` to at most `cols` points by averaging fixed-width
/// chunks, preserving the first and last samples' chunks.
fn downsample(values: &[f64], cols: usize) -> Vec<f64> {
    if cols == 0 || values.is_empty() {
        return Vec::new();
    }
    if values.len() <= cols {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(cols);
    for chunk in 0..cols {
        let start = chunk * values.len() / cols;
        let end = ((chunk + 1) * values.len() / cols).max(start + 1);
        let slice = &values[start..end.min(values.len())];
        let sum: f64 = slice.iter().sum();
        out.push(sum / slice.len().max(1) as f64);
    }
    out
}

/// Map battery levels to a one-line ASCII trajectory over `[lo, hi]`.
fn timeline(values: &[f64], lo: f64, hi: f64) -> String {
    let span = hi - lo;
    downsample(values, TIMELINE_COLS)
        .iter()
        .map(|v| {
            let norm = if span > 0.0 {
                ((v - lo) / span).clamp(0.0, 1.0)
            } else {
                0.5
            };
            let idx = (norm * (RAMP.len() - 1) as f64).round() as usize;
            char::from(*RAMP.get(idx.min(RAMP.len() - 1)).unwrap_or(&b' '))
        })
        .collect()
}

/// Counters worth surfacing in the activity section, by metric base name.
const ACTIVITY_COUNTERS: &[&str] = &[
    "core.decide.calls",
    "core.replan.count",
    "safety.degradations",
    "sim.slots",
    "sim.jobs_done",
    "sim.jobs_dropped",
    "sim.disturbances",
    "broker.revocations",
    "broker.restores",
    "broker.cascades",
    "broker.terminal_shutdowns",
    "broker.retries",
    "broker.abandoned",
];

/// Render the full report for a parsed trace.
pub fn render(trace: &Trace) -> String {
    let mut out = String::new();
    let meta = &trace.meta;
    let _ = writeln!(
        out,
        "trace \"{}\" (schema v{}): {} events, {} dropped, {} counters, {} gauges, {} histograms",
        meta.source,
        meta.schema,
        meta.events,
        meta.dropped,
        trace.counters.len(),
        trace.gauges.len(),
        trace.histograms.len(),
    );

    // Governor / safety activity, grouped under each scope.
    let mut activity: Vec<(&str, &str, u64)> = Vec::new();
    for (name, value) in &trace.counters {
        let (scope, metric) = split_scoped(name);
        if ACTIVITY_COUNTERS.contains(&metric) {
            activity.push((scope, metric, *value));
        }
    }
    if !activity.is_empty() {
        let _ = writeln!(out, "\nactivity:");
        for (scope, metric, value) in &activity {
            let shown = if scope.is_empty() { "<root>" } else { scope };
            let _ = writeln!(out, "  {shown:<40} {metric:<22} {value}");
        }
    }

    // Safety transition census from the event stream.
    let mut shed = 0u64;
    let mut recover = 0u64;
    let mut replan_failed = 0u64;
    let mut replan_recovered = 0u64;
    let mut fallback = 0u64;
    for e in &trace.events {
        match e.name.as_str() {
            "safety.shed" => shed += 1,
            "safety.recover" => recover += 1,
            "safety.replan_failed" => replan_failed += 1,
            "safety.replan_recovered" => replan_recovered += 1,
            "safety.fallback_engaged" => fallback += 1,
            _ => {}
        }
    }
    if shed + recover + replan_failed + replan_recovered + fallback > 0 {
        let _ = writeln!(
            out,
            "\nsafety transitions: {shed} shed, {recover} recover, {replan_failed} replan-failed, {replan_recovered} replan-recovered, {fallback} fallback"
        );
    }

    // Power-topology governance census from the broker.* event stream.
    let mut revocations = 0u64;
    let mut restores = 0u64;
    let mut cascades = 0u64;
    let mut shutdowns = 0u64;
    let mut retries = 0u64;
    let mut abandoned = 0u64;
    for e in &trace.events {
        match e.name.as_str() {
            "broker.level" => {
                let from = Trace::field(e, "from").unwrap_or(0.0);
                let to = Trace::field(e, "to").unwrap_or(0.0);
                if to < from {
                    revocations += 1;
                } else if to > from {
                    restores += 1;
                }
            }
            "broker.cascade" => cascades += 1,
            "broker.shutdown_start" => shutdowns += 1,
            "broker.retry" => retries += 1,
            "broker.abandon" => abandoned += 1,
            _ => {}
        }
    }
    if revocations + restores + cascades + shutdowns + retries + abandoned > 0 {
        let _ = writeln!(
            out,
            "\nbroker activity: {revocations} revocations, {restores} restores, {cascades} cascades, {shutdowns} terminal-shutdowns, {retries} retries, {abandoned} abandoned"
        );
    }

    // Live-service census: a `dpm-serve` trace carries root-level
    // session accounting plus per-session `serve.*` counters under the
    // absorbed `serve/<name>` scopes.
    let mut opened = 0u64;
    let mut closed = 0u64;
    let mut killed = 0u64;
    let mut requests = 0u64;
    let mut per_session: Vec<(&str, [u64; 4])> = Vec::new();
    for (name, value) in &trace.counters {
        let (scope, metric) = split_scoped(name);
        match metric {
            "serve.sessions_opened" => opened += value,
            "serve.sessions_closed" => closed += value,
            "serve.sessions_killed" => killed += value,
            "serve.requests" => requests += value,
            "serve.advances"
            | "serve.slots_stepped"
            | "serve.violations"
            | "serve.rate_updates"
            | "serve.disturbances" => {
                let idx = match metric {
                    "serve.advances" => 0,
                    "serve.slots_stepped" => 1,
                    "serve.violations" => 2,
                    _ => 3, // rate updates and disturbances fold together
                };
                match per_session.iter_mut().find(|(s, _)| *s == scope) {
                    Some((_, counts)) => counts[idx] += value,
                    None => {
                        let mut counts = [0u64; 4];
                        counts[idx] = *value;
                        per_session.push((scope, counts));
                    }
                }
            }
            _ => {}
        }
    }
    if opened + closed + killed + requests > 0 || !per_session.is_empty() {
        let _ = writeln!(
            out,
            "\nserve census: {opened} opened, {closed} closed, {killed} killed, {requests} requests"
        );
        per_session.sort_by_key(|(scope, _)| *scope);
        for (scope, [advances, slots, violations, updates]) in &per_session {
            let shown = if scope.is_empty() { "<root>" } else { scope };
            let _ = writeln!(
                out,
                "  {shown:<40} {advances} advances, {slots} slots, {violations} violations, {updates} updates"
            );
        }
    }

    // Histogram quantiles.
    if !trace.histograms.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<46} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &trace.histograms {
            let _ = writeln!(
                out,
                "{:<46} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                name,
                h.count,
                quantile(h, 0.50),
                quantile(h, 0.90),
                quantile(h, 0.99),
                h.max
            );
        }
    }

    // Battery trajectory per scope that carries sim.slot events.
    let mut drew_header = false;
    for (scope, events) in trace.events_by_scope() {
        let levels: Vec<f64> = events
            .iter()
            .filter(|e| e.name == "sim.slot")
            .filter_map(|e| Trace::field(e, "battery_j"))
            .collect();
        if levels.is_empty() {
            continue;
        }
        // Scale to the advertised window when present, else to the data.
        let (lo, hi) = match (
            trace.scoped_gauge(scope, "sim.c_min_j"),
            trace.scoped_gauge(scope, "sim.c_max_j"),
        ) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => (
                levels.iter().copied().fold(f64::INFINITY, f64::min),
                levels.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ),
        };
        if !drew_header {
            let _ = writeln!(
                out,
                "\nbattery trajectory (scaled {} → {} over [C_min, C_max], {} slots max per row):",
                char::from(RAMP[0]),
                char::from(RAMP[RAMP.len() - 1]),
                TIMELINE_COLS
            );
            drew_header = true;
        }
        let shown = if scope.is_empty() { "<root>" } else { scope };
        let _ = writeln!(
            out,
            "  {:<40} |{}| {} slots",
            shown,
            timeline(&levels, lo, hi),
            levels.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_telemetry::Recorder;

    fn sample_trace() -> Trace {
        let rec = Recorder::enabled("summary");
        rec.incr("core.replan.count", 4);
        rec.incr("safety.degradations", 2);
        rec.gauge("sim.c_min_j", 0.0);
        rec.gauge("sim.c_max_j", 10.0);
        for i in 0..100u64 {
            rec.event(
                "sim.slot",
                Some(i),
                i as f64,
                &[("battery_j", (i % 10) as f64)],
            );
            rec.observe("sim.slot.used_j", (i % 5) as f64);
        }
        rec.event(
            "safety.shed",
            Some(3),
            3.0,
            &[("from_level", 0.0), ("to_level", 1.0)],
        );
        rec.event(
            "safety.recover",
            Some(9),
            9.0,
            &[("from_level", 1.0), ("to_level", 0.0)],
        );
        Trace::parse(&rec.to_jsonl()).expect("trace parses")
    }

    #[test]
    fn report_carries_all_sections() {
        let report = render(&sample_trace());
        assert!(report.contains("trace \"summary\""), "{report}");
        assert!(report.contains("core.replan.count"), "{report}");
        assert!(report.contains("1 shed, 1 recover"), "{report}");
        assert!(report.contains("sim.slot.used_j"), "{report}");
        assert!(report.contains("battery trajectory"), "{report}");
        assert!(report.contains("100 slots"), "{report}");
        // The timeline is downsampled to the column budget.
        let row = report
            .lines()
            .find(|l| l.contains("100 slots"))
            .expect("timeline row");
        let bars: String = row
            .split('|')
            .nth(1)
            .expect("ramp between pipes")
            .to_string();
        assert_eq!(bars.len(), TIMELINE_COLS);
    }

    #[test]
    fn broker_census_counts_levels_by_direction() {
        let rec = Recorder::enabled("broker-summary");
        rec.incr("broker.revocations", 2);
        rec.incr("broker.restores", 1);
        rec.event(
            "broker.level",
            Some(1),
            1.0,
            &[("element", 2.0), ("from", 1.0), ("to", 0.0)],
        );
        rec.event(
            "broker.level",
            Some(1),
            1.0,
            &[("element", 1.0), ("from", 1.0), ("to", 0.0)],
        );
        rec.event(
            "broker.level",
            Some(4),
            4.0,
            &[("element", 1.0), ("from", 0.0), ("to", 1.0)],
        );
        rec.event("broker.cascade", Some(1), 1.0, &[("element", 1.0)]);
        rec.event("broker.retry", Some(2), 2.0, &[("element", 2.0)]);
        let trace = Trace::parse(&rec.to_jsonl()).expect("parses");
        let report = render(&trace);
        assert!(report.contains("broker.revocations"), "{report}");
        assert!(
            report.contains(
                "broker activity: 2 revocations, 1 restores, 1 cascades, 0 terminal-shutdowns, 1 retries, 0 abandoned"
            ),
            "{report}"
        );
        // A trace with no broker events omits the census line entirely.
        let quiet = render(&sample_trace());
        assert!(!quiet.contains("broker activity"), "{quiet}");
    }

    #[test]
    fn serve_census_aggregates_session_scopes() {
        let rec = Recorder::enabled("serve");
        rec.incr("serve.requests", 12);
        rec.incr("serve.sessions_opened", 2);
        rec.incr("serve.sessions_closed", 1);
        rec.incr("serve.sessions_killed", 1);
        let a = rec.sibling();
        a.incr("serve.advances", 3);
        a.incr("serve.slots_stepped", 24);
        let b = rec.sibling();
        b.incr("serve.advances", 2);
        b.incr("serve.violations", 1);
        b.incr("serve.rate_updates", 1);
        rec.absorb("serve/a", &a);
        rec.absorb("serve/b", &b);
        let trace = Trace::parse(&rec.to_jsonl()).expect("parses");
        let report = render(&trace);
        assert!(
            report.contains("serve census: 2 opened, 1 closed, 1 killed, 12 requests"),
            "{report}"
        );
        assert!(
            report.contains("serve/a") && report.contains("3 advances, 24 slots, 0 violations"),
            "{report}"
        );
        assert!(
            report.contains("serve/b") && report.contains("1 violations, 1 updates"),
            "{report}"
        );
        // Traces without serve.* counters omit the census entirely.
        let quiet = render(&sample_trace());
        assert!(!quiet.contains("serve census"), "{quiet}");
    }

    #[test]
    fn quantiles_interpolate_within_the_crossing_bucket() {
        let rec = Recorder::enabled("q");
        for v in [1.0, 1.0, 2.0, 4.0] {
            rec.observe("h", v);
        }
        let trace = Trace::parse(&rec.to_jsonl()).expect("parses");
        let h = trace.histograms.get("h").expect("histogram");
        let p50 = quantile(h, 0.5);
        assert!((1.0..=2.0).contains(&p50), "{p50}");
        assert_eq!(quantile(h, 1.0), h.max);
        assert_eq!(quantile(h, 0.0), h.min);
        assert_eq!(quantile(h, 0.0), quantile(h, f64::NAN));
        let empty = HistogramLine {
            name: "e".into(),
            bounds: vec![1.0],
            counts: vec![0, 0],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(quantile(&empty, 0.9), 0.0);
    }

    #[test]
    fn interpolated_quantiles_match_exact_values_at_the_boundaries() {
        // All four observations in one bucket [min=1, bound=4]: the
        // interpolation is linear over the tightened edges, so the
        // rank-r quantile is min + (r/4)·(4−1) exactly.
        let one_bucket = HistogramLine {
            name: "b".into(),
            bounds: vec![4.0, 8.0],
            counts: vec![4, 0, 0],
            count: 4,
            sum: 10.0,
            min: 1.0,
            max: 4.0,
        };
        assert!((quantile(&one_bucket, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&one_bucket, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&one_bucket, 0.75) - 3.25).abs() < 1e-12);
        assert_eq!(quantile(&one_bucket, 0.0), 1.0);
        assert_eq!(quantile(&one_bucket, 1.0), 4.0);

        // A constant sample collapses every quantile to that value — the
        // tightened edges (lower = min, upper = max) make it exact where
        // a bucket upper bound would have reported 100.
        let constant = HistogramLine {
            name: "c".into(),
            bounds: vec![100.0],
            counts: vec![3, 0],
            count: 3,
            sum: 9.0,
            min: 3.0,
            max: 3.0,
        };
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(quantile(&constant, q), 3.0, "q = {q}");
        }

        // Two buckets of 5 each over [0,1] and (1,2]: the p50 rank (5)
        // lands exactly on the first bucket's upper edge, and p75 sits
        // halfway into the second bucket.
        let two_buckets = HistogramLine {
            name: "t".into(),
            bounds: vec![1.0, 2.0],
            counts: vec![5, 5, 0],
            count: 10,
            sum: 15.0,
            min: 0.0,
            max: 2.0,
        };
        assert!((quantile(&two_buckets, 0.5) - 1.0).abs() < 1e-12);
        assert!((quantile(&two_buckets, 0.75) - 1.5).abs() < 1e-12);

        // The overflow bucket interpolates toward the observed max, not
        // toward infinity.
        let overflow = HistogramLine {
            name: "o".into(),
            bounds: vec![1.0],
            counts: vec![0, 4],
            count: 4,
            sum: 24.0,
            min: 2.0,
            max: 10.0,
        };
        let p50 = quantile(&overflow, 0.5);
        assert!((2.0..=10.0).contains(&p50), "{p50}");
        assert!((p50 - 6.0).abs() < 1e-12, "{p50}");
        assert_eq!(quantile(&overflow, 1.0), 10.0);
    }

    #[test]
    fn downsample_preserves_short_series_and_bounds_long_ones() {
        assert_eq!(downsample(&[1.0, 2.0], 64), vec![1.0, 2.0]);
        assert!(downsample(&[], 64).is_empty());
        let long: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let ds = downsample(&long, 64);
        assert_eq!(ds.len(), 64);
        // Monotone input stays monotone through chunk means.
        assert!(ds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn timeline_is_flat_for_degenerate_scales() {
        let line = timeline(&[5.0, 5.0, 5.0], 5.0, 5.0);
        assert_eq!(line.len(), 3);
        assert!(line
            .chars()
            .all(|c| c == line.chars().next().unwrap_or(' ')));
    }

    #[test]
    fn scopes_without_window_gauges_scale_to_their_data() {
        let rec = Recorder::enabled("nw");
        rec.event("sim.slot", Some(0), 0.0, &[("battery_j", 3.0)]);
        rec.event("sim.slot", Some(1), 1.0, &[("battery_j", 7.0)]);
        let trace = Trace::parse(&rec.to_jsonl()).expect("parses");
        let report = render(&trace);
        assert!(report.contains("battery trajectory"), "{report}");
        assert!(report.contains("2 slots"), "{report}");
    }
}
