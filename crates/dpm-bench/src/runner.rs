//! Scoped-thread experiment runner: fan independent jobs across cores with
//! deterministic result ordering.
//!
//! The sweep and repro harnesses execute many *independent* simulation
//! jobs (sweep points × governors). This module partitions a job list into
//! contiguous blocks — the same `crossbeam::scope` block-partition pattern
//! proven in `dpm-fft`'s fork-join FFT (`crates/dpm-fft/src/parallel.rs`)
//! — and runs one scoped worker thread per block.
//!
//! ## Contract
//!
//! * **Determinism** — results are collected *by job index*, never by
//!   completion order, so the output of `run_indexed` is byte-for-byte
//!   independent of the worker count. `jobs = 1` degrades to a plain
//!   sequential loop on the calling thread.
//! * **Failure isolation** — one failing job cannot abort its siblings.
//!   Jobs return their own `Result`s as ordinary values, and a *panic*
//!   inside a job is caught at the job boundary and surfaced as a
//!   structured [`JobPanic`] in that job's result slot while every other
//!   job completes normally.
//! * **Timing** — every job's wall-clock time is recorded ([`JobTiming`]),
//!   along with the run's overall wall time, so harnesses can report
//!   speedup and per-job cost without instrumenting their closures.
//!
//! Worker-count resolution for binaries lives in [`resolve_jobs`]:
//! an explicit `--jobs N` beats the `DPM_JOBS` environment variable,
//! which beats the machine's available parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Environment variable consulted by [`resolve_jobs`] when no explicit
/// `--jobs` override is given.
pub const JOBS_ENV: &str = "DPM_JOBS";

/// A worker panic captured at the job boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job whose closure panicked.
    pub job: usize,
    /// The panic payload, when it was a string (the common case for
    /// `panic!`/`assert!`); a placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Wall-clock cost of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTiming {
    /// Job index (position in the input slice).
    pub index: usize,
    /// Wall-clock seconds the job's closure ran for.
    pub wall: f64,
}

/// Aggregate statistics for one [`run_indexed`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads actually used (≤ requested, ≤ job count).
    pub threads: usize,
    /// Wall-clock seconds for the whole run.
    pub wall: f64,
    /// Per-job wall-clock timings, in job order.
    pub timings: Vec<JobTiming>,
}

impl RunStats {
    /// Sum of per-job wall times — what a serial run would have cost.
    pub fn serial_equivalent(&self) -> f64 {
        self.timings.iter().map(|t| t.wall).sum()
    }

    /// The most expensive single job, `0.0` for an empty run.
    pub fn max_job_wall(&self) -> f64 {
        self.timings.iter().map(|t| t.wall).fold(0.0, f64::max)
    }

    /// Fold this run's timings into `telemetry` under `label`: each job
    /// lands in the `{label}.job` span, the whole run in `{label}.run`,
    /// and the job count in the `{label}.jobs` counter. Only the counts
    /// reach the deterministic trace — the wall-clock side stays in the
    /// profile, so traces remain byte-identical across `--jobs` settings.
    /// (Thread count is deliberately not recorded: it varies with
    /// `--jobs`.)
    ///
    /// The same timings also land in the span *tree* as
    /// `{label}.run` → `{label}.run;{label}.job`, so `dpm-analyze profile`
    /// can attribute fan-out overhead (run self-time) separately from the
    /// jobs themselves.
    pub fn record_into(&self, telemetry: &dpm_telemetry::Recorder, label: &str) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.incr(&format!("{label}.jobs"), self.jobs as u64);
        let span = format!("{label}.job");
        let job_path = format!("{label}.run;{label}.job");
        for timing in &self.timings {
            telemetry.record_span(&span, timing.wall);
            telemetry.record_span_path(&job_path, timing.wall);
        }
        telemetry.record_span(&format!("{label}.run"), self.wall);
        telemetry.record_span_path(&format!("{label}.run"), self.wall);
    }

    /// One-line human summary for a harness's stderr diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs on {} thread{} in {:.3} s (serial-equivalent {:.3} s, max job {:.3} s)",
            self.jobs,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall,
            self.serial_equivalent(),
            self.max_job_wall(),
        )
    }
}

/// Resolve the worker count for a harness binary.
///
/// Priority: an explicit CLI value (`--jobs N`), then the `DPM_JOBS`
/// environment variable, then the machine's available parallelism. Zero or
/// unparsable values are ignored at each stage, so the result is always
/// ≥ 1.
pub fn resolve_jobs(cli: Option<usize>) -> usize {
    cli.filter(|&n| n >= 1)
        .or_else(|| {
            std::env::var(JOBS_ENV)
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .filter(|&n: &usize| n >= 1)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run `f` over every item on up to `jobs` scoped worker threads and
/// return the per-job results *in input order* plus timing statistics.
///
/// Each result slot holds `Ok(R)` from the closure or `Err(JobPanic)` if
/// that particular job panicked; sibling jobs are unaffected either way.
/// The closure receives `(job_index, &item)`.
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> (Vec<Result<R, JobPanic>>, RunStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let started = Instant::now();
    let threads = jobs.clamp(1, items.len().max(1));

    let mut slots: Vec<Option<(Result<R, JobPanic>, f64)>> =
        (0..items.len()).map(|_| None).collect();

    if threads == 1 {
        for (i, (item, slot)) in items.iter().zip(slots.iter_mut()).enumerate() {
            *slot = Some(run_one(i, item, &f));
        }
    } else {
        let chunk = items.len().div_ceil(threads);
        // A panic inside a job is caught in `run_one`; only a panic in the
        // bookkeeping itself could escape a worker, in which case the
        // affected slots stay `None` and are reported as panics below.
        let _ = crossbeam::scope(|scope| {
            for (w, (item_block, slot_block)) in
                items.chunks(chunk).zip(slots.chunks_mut(chunk)).enumerate()
            {
                let f = &f;
                scope.spawn(move |_| {
                    for (i, (item, slot)) in
                        item_block.iter().zip(slot_block.iter_mut()).enumerate()
                    {
                        *slot = Some(run_one(w * chunk + i, item, f));
                    }
                });
            }
        });
    }

    let mut results = Vec::with_capacity(slots.len());
    let mut timings = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let (result, wall) = slot.unwrap_or_else(|| {
            (
                Err(JobPanic {
                    job: i,
                    message: "worker thread died before running this job".into(),
                }),
                0.0,
            )
        });
        results.push(result);
        timings.push(JobTiming { index: i, wall });
    }

    let stats = RunStats {
        jobs: results.len(),
        threads,
        wall: started.elapsed().as_secs_f64(),
        timings,
    };
    (results, stats)
}

/// Execute one job under a panic guard, timing it.
fn run_one<T, R>(
    index: usize,
    item: &T,
    f: &(impl Fn(usize, &T) -> R + Sync),
) -> (Result<R, JobPanic>, f64) {
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| f(index, item)));
    let wall = t0.elapsed().as_secs_f64();
    let result = outcome.map_err(|payload| JobPanic {
        job: index,
        message: panic_message(payload.as_ref()),
    });
    (result, wall)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

// Compile-time thread-safety audit for the simulation types every worker
// moves across its job boundary (companion to the dpm-core audit block).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<dpm_core::platform::Platform>();
    assert_send_sync::<dpm_workloads::Scenario>();
    assert_send::<dpm_sim::prelude::SimReport>();
    assert_send::<dpm_sim::prelude::SimError>();
    // Per-job sibling recorders are shared into the worker closures by
    // reference and absorbed on the main thread afterwards.
    assert_send_sync::<dpm_telemetry::Recorder>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_regardless_of_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let (serial, _) = run_indexed(&items, 1, |i, &x| (i, x * x));
        for jobs in [2, 3, 4, 8, 64] {
            let (parallel, stats) = run_indexed(&items, jobs, |i, &x| (i, x * x));
            assert_eq!(serial, parallel, "jobs = {jobs}");
            assert_eq!(stats.jobs, items.len());
            assert!(stats.threads <= jobs);
        }
        for (i, r) in serial.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), (i, i * i));
        }
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let items: Vec<usize> = (0..10).collect();
        let (results, _) = run_indexed(&items, 4, |_, &x| {
            assert!(x != 5, "job five exploded");
            x + 1
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.job, 5);
                assert!(p.message.contains("job five exploded"), "{}", p.message);
            } else {
                assert_eq!(*r.as_ref().unwrap(), i + 1);
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let (results, stats) = run_indexed(&items, 4, |_, &x| x);
        assert!(results.is_empty());
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.serial_equivalent(), 0.0);
        assert_eq!(stats.max_job_wall(), 0.0);
    }

    #[test]
    fn timings_cover_every_job() {
        let items = [1u64, 2, 3];
        let (_, stats) = run_indexed(&items, 2, |_, &x| x);
        assert_eq!(stats.timings.len(), 3);
        assert!(stats.timings.iter().all(|t| t.wall >= 0.0));
        assert!(stats.wall >= 0.0);
        assert!(!stats.summary().is_empty());
    }

    #[test]
    fn resolve_jobs_prefers_cli_over_env() {
        // No env manipulation (tests run in parallel): the CLI path alone.
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        // Zero is treated as "unset", falling through to a machine default.
        assert!(resolve_jobs(Some(0)) >= 1);
    }
}
