//! The `(Power, Perf)` pair table of Algorithm 2, lines 1–5.
//!
//! Lines 1–2 rate every discrete `(n, f)` combination; lines 3–5 delete any
//! pair that draws at least as much power as another while performing no
//! better. What survives is the Pareto frontier, strictly increasing in
//! both power and performance, which makes the line 12–13 lookup ("best
//! point not exceeding the slot's power budget") a binary search.

use super::OperatingPoint;
use crate::error::DpmError;
use crate::model::Throughput;
use crate::platform::Platform;
use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// An operating point with its modelled power draw and throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatedPoint {
    /// The parameters.
    pub point: OperatingPoint,
    /// Board power at this point (workers + controller active, rest
    /// standby).
    pub power: Watts,
    /// Eq. 3 throughput.
    pub perf: Throughput,
}

/// The pruned frontier, sorted by ascending power (and hence ascending
/// performance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoTable {
    frontier: Vec<RatedPoint>,
    /// How many raw pairs were rated before pruning (for the ablation
    /// bench).
    raw_count: usize,
}

impl ParetoTable {
    /// Rate every `(n, f)` pair of the platform — `n ∈ {0} ∪ [1, workers]`,
    /// `f` in the discrete frequency set — and prune dominated pairs.
    ///
    /// # Errors
    /// Propagates [`Platform::validate`]: a malformed platform cannot be
    /// rated. Returns [`DpmError::NonFinite`] when a power/performance
    /// model rates any pair NaN or infinite (e.g. a NaN `c2` capacitance
    /// slips through the structural validation) — a non-finite rating
    /// would otherwise scramble the sorted frontier silently.
    pub fn build(platform: &Platform) -> Result<Self, DpmError> {
        platform.validate()?;
        let rated = Self::rate_all(platform);
        Self::reject_non_finite(&rated)?;
        let raw_count = rated.len();
        let frontier = Self::prune(rated);
        Ok(Self {
            frontier,
            raw_count,
        })
    }

    /// Build without pruning (ablation baseline): the table keeps every
    /// pair; lookups scan linearly for the best feasible point.
    ///
    /// # Errors
    /// Same conditions as [`ParetoTable::build`].
    pub fn build_unpruned(platform: &Platform) -> Result<Self, DpmError> {
        platform.validate()?;
        let mut rated = Self::rate_all(platform);
        Self::reject_non_finite(&rated)?;
        let raw_count = rated.len();
        rated.sort_by(|a, b| {
            a.power
                .value()
                .total_cmp(&b.power.value())
                .then(a.perf.value().total_cmp(&b.perf.value()))
        });
        Ok(Self {
            frontier: rated,
            raw_count,
        })
    }

    fn rate_all(platform: &Platform) -> Vec<RatedPoint> {
        let perf_model = platform.perf_model();
        let mut rated = Vec::with_capacity(platform.workers() * platform.frequencies.len() + 1);
        // The all-off point: standby floor, zero throughput.
        rated.push(RatedPoint {
            point: OperatingPoint::OFF,
            power: platform.power.all_standby(),
            perf: Throughput::ZERO,
        });
        for n in 1..=platform.workers() {
            for &f in &platform.frequencies {
                let Some(v) = platform.voltage_for(f) else {
                    continue;
                };
                rated.push(RatedPoint {
                    point: OperatingPoint::new(n, f, v),
                    power: platform.board_power(n, f),
                    perf: perf_model.throughput(n, f, v),
                });
            }
        }
        rated
    }

    /// Every rating must be finite before any `total_cmp` sort sees it: a
    /// NaN power or throughput (degenerate model coefficients) would sort
    /// deterministically but *meaninglessly*, corrupting every downstream
    /// budget lookup.
    fn reject_non_finite(rated: &[RatedPoint]) -> Result<(), DpmError> {
        for r in rated {
            if !r.power.value().is_finite() || !r.perf.value().is_finite() {
                return Err(DpmError::NonFinite(format!(
                    "rated operating point (workers {}, f {}): power {}, perf {} jobs/s",
                    r.point.workers,
                    r.point.frequency,
                    r.power,
                    r.perf.value()
                )));
            }
        }
        Ok(())
    }

    /// Algorithm 2 lines 3–5: remove every pair dominated by another
    /// (higher-or-equal power with lower-or-equal performance, unless
    /// identical). Implemented as the classic sort-and-sweep: ascending by
    /// power, keep only strict performance improvements.
    fn prune(mut rated: Vec<RatedPoint>) -> Vec<RatedPoint> {
        rated.sort_by(|a, b| {
            a.power
                .value()
                .total_cmp(&b.power.value())
                // Among equal powers, best performance first so the sweep
                // keeps it.
                .then(b.perf.value().total_cmp(&a.perf.value()))
        });
        let mut frontier: Vec<RatedPoint> = Vec::with_capacity(rated.len());
        for r in rated {
            match frontier.last() {
                Some(last) if r.perf.value() <= last.perf.value() + 1e-15 => {}
                _ => frontier.push(r),
            }
        }
        frontier
    }

    /// Points on the frontier, ascending power.
    pub fn frontier(&self) -> &[RatedPoint] {
        &self.frontier
    }

    /// Raw pair count before pruning.
    pub fn raw_count(&self) -> usize {
        self.raw_count
    }

    /// The degenerate answer when the frontier is somehow empty (only
    /// possible by deserializing a hand-written table — [`Self::build`]
    /// always seeds the off point): everything off, zero power.
    fn off_fallback() -> RatedPoint {
        RatedPoint {
            point: OperatingPoint::OFF,
            power: Watts::ZERO,
            perf: Throughput::ZERO,
        }
    }

    /// Highest-performance point whose power does not exceed `budget`
    /// (Algorithm 2 lines 12–13). Returns the all-off point when even that
    /// exceeds the budget — the board cannot draw less than its standby
    /// floor, so the caller sees the floor power regardless.
    pub fn best_within(&self, budget: Watts) -> RatedPoint {
        let idx = self.partition_index(budget).saturating_sub(1);
        self.frontier
            .get(idx)
            .copied()
            .unwrap_or_else(Self::off_fallback)
    }

    /// Binary search for the first frontier index whose power strictly
    /// exceeds `budget` (the predicate is monotone because the frontier is
    /// sorted by ascending power). `best_within` answers with the entry
    /// just before it; `nearest` also reads the entry at it.
    fn partition_index(&self, budget: Watts) -> usize {
        let mut lo = 0usize;
        let mut hi = self.frontier.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.frontier[mid].power.value() <= budget.value() + 1e-12 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The frontier point whose power is *nearest* to `budget` (Algorithm
    /// 2's "power usage closely follows the allocated power schedule" —
    /// the paper's Tables 3/5 show the selected power rounding to either
    /// side of `P_init`, with Algorithm 3 absorbing the signed error).
    ///
    /// One binary search serves both neighbours: the partition index is
    /// the first entry strictly above the budget (what the old linear
    /// `find` walked the frontier for), its predecessor the best within.
    pub fn nearest(&self, budget: Watts) -> RatedPoint {
        let cut = self.partition_index(budget);
        let below = self
            .frontier
            .get(cut.saturating_sub(1))
            .copied()
            .unwrap_or_else(Self::off_fallback);
        match self.frontier.get(cut) {
            Some(up) => {
                let d_below = (budget.value() - below.power.value()).abs();
                let d_above = (up.power.value() - budget.value()).abs();
                if d_above < d_below {
                    *up
                } else {
                    below
                }
            }
            None => below,
        }
    }

    /// Cheapest point achieving at least `perf` jobs/s, or `None` when the
    /// platform cannot reach it.
    pub fn cheapest_reaching(&self, perf: Throughput) -> Option<RatedPoint> {
        self.frontier
            .iter()
            .find(|r| r.perf.value() + 1e-15 >= perf.value())
            .copied()
    }

    /// The maximum achievable throughput.
    pub fn peak(&self) -> RatedPoint {
        self.frontier
            .last()
            .copied()
            .unwrap_or_else(Self::off_fallback)
    }

    /// Linear-scan lookup used by the unpruned ablation table: same answer
    /// as [`Self::best_within`], O(len) instead of O(log len).
    pub fn best_within_scan(&self, budget: Watts) -> RatedPoint {
        let mut best = self
            .frontier
            .first()
            .copied()
            .unwrap_or_else(Self::off_fallback);
        for r in &self.frontier {
            if r.power.value() <= budget.value() + 1e-12 && r.perf.value() >= best.perf.value() {
                best = *r;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::watts;

    fn table() -> ParetoTable {
        ParetoTable::build(&Platform::pama()).unwrap()
    }

    #[test]
    fn frontier_is_strictly_increasing() {
        let t = table();
        for w in t.frontier().windows(2) {
            assert!(w[1].power.value() > w[0].power.value());
            assert!(w[1].perf.value() > w[0].perf.value());
        }
    }

    #[test]
    fn frontier_contains_off_point() {
        let t = table();
        assert!(t.frontier()[0].point.is_off());
        assert_eq!(t.frontier()[0].perf, Throughput::ZERO);
    }

    #[test]
    fn pruning_removes_dominated_pairs() {
        let t = table();
        // Raw table: 1 off + 7 workers × 3 freqs = 22 pairs. Dominated ones
        // exist (e.g. 4 procs @ 20 MHz vs 1 proc @ 80 MHz: similar power,
        // Amdahl penalizes the former), so the frontier must be smaller.
        assert_eq!(t.raw_count(), 22);
        assert!(t.frontier().len() < t.raw_count(), "{}", t.frontier().len());
    }

    #[test]
    fn no_non_dominated_pair_is_lost() {
        // Every raw pair must be dominated by some frontier entry.
        let platform = Platform::pama();
        let pruned = ParetoTable::build(&platform).unwrap();
        let raw = ParetoTable::build_unpruned(&platform).unwrap();
        for r in raw.frontier() {
            let dominated_or_present = pruned.frontier().iter().any(|f| {
                f.power.value() <= r.power.value() + 1e-12
                    && f.perf.value() + 1e-12 >= r.perf.value()
            });
            assert!(dominated_or_present, "lost pair {:?}", r.point);
        }
    }

    #[test]
    fn best_within_matches_linear_scan() {
        let platform = Platform::pama();
        let pruned = ParetoTable::build(&platform).unwrap();
        let unpruned = ParetoTable::build_unpruned(&platform).unwrap();
        for i in 0..100 {
            let budget = watts(0.05 * i as f64);
            let a = pruned.best_within(budget);
            let b = unpruned.best_within_scan(budget);
            assert!(
                (a.perf.value() - b.perf.value()).abs() < 1e-12,
                "budget {budget}: {:?} vs {:?}",
                a.point,
                b.point
            );
        }
    }

    #[test]
    fn best_within_tiny_budget_is_off() {
        let t = table();
        let r = t.best_within(watts(0.01));
        assert!(r.point.is_off());
    }

    #[test]
    fn best_within_huge_budget_is_peak() {
        let t = table();
        let r = t.best_within(watts(100.0));
        assert_eq!(r.point, t.peak().point);
        assert_eq!(r.point.workers, 7);
        assert_eq!(r.point.frequency, crate::units::Hertz::from_mhz(80.0));
    }

    #[test]
    fn cheapest_reaching_inverts_best_within() {
        let t = table();
        for r in t.frontier().iter().skip(1) {
            let c = t.cheapest_reaching(r.perf).unwrap();
            assert!(c.power.value() <= r.power.value() + 1e-12);
        }
        assert!(t
            .cheapest_reaching(Throughput(t.peak().perf.value() * 2.0))
            .is_none());
    }

    #[test]
    fn build_rejects_invalid_platform() {
        let mut p = Platform::pama();
        p.frequencies.clear();
        assert!(matches!(
            ParetoTable::build(&p),
            Err(DpmError::InvalidPlatform(_))
        ));
    }

    #[test]
    fn non_finite_ratings_rejected() {
        // A NaN switching capacitance passes the structural validation but
        // rates every active pair NaN; it must surface as a typed error,
        // not a silently scrambled frontier.
        let mut p = Platform::pama();
        p.power.c2 = f64::NAN;
        assert!(p.validate().is_ok(), "structural validation must not trip");
        assert!(matches!(
            ParetoTable::build(&p),
            Err(DpmError::NonFinite(_))
        ));
        assert!(matches!(
            ParetoTable::build_unpruned(&p),
            Err(DpmError::NonFinite(_))
        ));
        let mut q = Platform::pama();
        q.power.c2 = f64::INFINITY;
        assert!(matches!(
            ParetoTable::build(&q),
            Err(DpmError::NonFinite(_))
        ));
    }

    #[test]
    fn nearest_matches_linear_neighbour_scan() {
        // The shared-partition `nearest` must agree with the definitional
        // linear scan on both pruned and unpruned tables.
        let platform = Platform::pama();
        for t in [
            ParetoTable::build(&platform).unwrap(),
            ParetoTable::build_unpruned(&platform).unwrap(),
        ] {
            for i in 0..200 {
                let budget = watts(0.025 * i as f64);
                let below = t.best_within(budget);
                let above = t
                    .frontier()
                    .iter()
                    .find(|r| r.power.value() > budget.value() + 1e-12);
                let expected = match above {
                    Some(up)
                        if (up.power.value() - budget.value()).abs()
                            < (budget.value() - below.power.value()).abs() =>
                    {
                        *up
                    }
                    _ => below,
                };
                let got = t.nearest(budget);
                assert_eq!(got.point, expected.point, "budget {budget}");
                assert_eq!(
                    got.power.value().to_bits(),
                    expected.power.value().to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_frontier_degrades_to_off() {
        let t = ParetoTable {
            frontier: Vec::new(),
            raw_count: 0,
        };
        assert!(t.peak().point.is_off());
        assert!(t.best_within(watts(1.0)).point.is_off());
        assert!(t.best_within_scan(watts(1.0)).point.is_off());
    }

    #[test]
    fn budget_between_points_selects_lower() {
        let t = table();
        let f = t.frontier();
        let mid = watts(0.5 * (f[1].power.value() + f[2].power.value()));
        let r = t.best_within(mid);
        assert_eq!(r.point, f[1].point);
    }
}
