//! Real-input FFT via the classic N/2-complex trick.
//!
//! FORTE digitizes a *real* IF signal, so half of a complex transform's
//! work is redundant. Packing even samples into the real part and odd
//! samples into the imaginary part of an `N/2`-point complex FFT, then
//! untwisting with
//!
//! ```text
//! X[k] = (Z[k] + Z*[N/2−k])/2 − i·W_N^k·(Z[k] − Z*[N/2−k])/2
//! ```
//!
//! recovers the first `N/2 + 1` bins of the length-`N` real transform —
//! exactly the one-sided spectrum the detector consumes — for roughly half
//! the butterflies and half the memory traffic of the complex path. On a
//! 20 MHz PIM that halves the 4.8 s job; the cycle model's `fft_size`
//! parameter lets the simulator study that trade.

use crate::fft::{Direction, FixedFft};
use crate::fixed::{CQ15, Q15};
use crate::twiddle::TwiddleTable;

/// Plan for a real-input transform of `n` samples (power of two ≥ 8).
#[derive(Debug, Clone)]
pub struct RealFft {
    n: usize,
    half: FixedFft,
    twiddles: TwiddleTable,
}

impl RealFft {
    /// Plan a transform.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 8, "size must be 2^k ≥ 8");
        Self {
            n,
            half: FixedFft::new(n / 2),
            twiddles: TwiddleTable::new(n),
        }
    }

    /// Input length `N`.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Forward transform of `input` (length `N`, real Q15) into the
    /// one-sided spectrum (length `N/2 + 1` complex bins).
    ///
    /// Scaling matches [`FixedFft`]'s convention: the underlying half-size
    /// transform divides by `N/2`, and the untwist averages two halves, so
    /// the output equals `DFT(x)/N` — identical to running the full
    /// complex [`FixedFft`] on the zero-imaginary signal.
    pub fn forward(&self, input: &[Q15]) -> Vec<CQ15> {
        assert_eq!(input.len(), self.n, "input length must equal planned size");
        let half = self.n / 2;
        // Pack: z[m] = x[2m] + i·x[2m+1].
        let mut z: Vec<CQ15> = (0..half)
            .map(|m| CQ15::new(input[2 * m], input[2 * m + 1]))
            .collect();
        self.half.transform(&mut z, Direction::Forward);

        // Untwist. Indices wrap modulo N/2; bin N/2 uses Z[0].
        let mut out = Vec::with_capacity(half + 1);
        for k in 0..=half {
            let zk = z[k % half];
            let zc = z[(half - k) % half].conj();
            // E[k] = (Z[k] + Z*[−k])/2 — spectrum of the even samples.
            let e = zk.sat_add(zc).shr(1);
            // O[k] = −i·(Z[k] − Z*[−k])/2 — spectrum of the odd samples.
            let d = zk.sat_sub(zc).shr(1);
            let o = CQ15::new(d.im, -d.re); // multiply by −i
                                            // X[k] = (E[k] + W_N^k·O[k]) / 2 — the extra /2 restores the
                                            // full-size 1/N scaling (the half transform only divided by
                                            // N/2).
            let w = if k < half {
                self.twiddles.forward(k)
            } else {
                // W_N^{N/2} = −1.
                CQ15::from_f64(-1.0, 0.0)
            };
            out.push(e.sat_add(o.sat_mul(w)).shr(1));
        }
        out
    }

    /// Power spectrum (squared magnitudes of the one-sided bins).
    pub fn power_spectrum(&self, input: &[Q15]) -> Vec<f64> {
        self.forward(input).iter().map(|c| c.mag_sq()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{quantize, reference_dft};

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                0.25 * (0.21 * x).sin() + 0.15 * (0.045 * x).cos() + 0.1 * (0.37 * x).sin()
            })
            .collect()
    }

    fn to_q15(sig: &[f64]) -> Vec<Q15> {
        sig.iter().map(|&x| Q15::from_f64(x)).collect()
    }

    #[test]
    fn matches_full_complex_fft() {
        let n = 256;
        let sig = real_signal(n);
        let rfft = RealFft::new(n);
        let one_sided = rfft.forward(&to_q15(&sig));
        assert_eq!(one_sided.len(), n / 2 + 1);

        let full = FixedFft::new(n);
        let mut buf = quantize(&sig.iter().map(|&x| (x, 0.0)).collect::<Vec<_>>());
        full.transform(&mut buf, Direction::Forward);

        for (k, c) in one_sided.iter().enumerate() {
            let (gr, gi) = c.to_f64();
            let (wr, wi) = buf[k].to_f64();
            assert!(
                (gr - wr).abs() < 6e-3 && (gi - wi).abs() < 6e-3,
                "bin {k}: ({gr},{gi}) vs ({wr},{wi})"
            );
        }
    }

    #[test]
    fn matches_reference_dft() {
        let n = 128;
        let sig = real_signal(n);
        let rfft = RealFft::new(n);
        let got = rfft.forward(&to_q15(&sig));
        let reference = reference_dft(
            &sig.iter().map(|&x| (x, 0.0)).collect::<Vec<_>>(),
            Direction::Forward,
        );
        for (k, c) in got.iter().enumerate() {
            let (gr, gi) = c.to_f64();
            let (wr, wi) = (reference[k].0 / n as f64, reference[k].1 / n as f64);
            assert!(
                (gr - wr).abs() < 8e-3 && (gi - wi).abs() < 8e-3,
                "bin {k}: ({gr},{gi}) vs ({wr},{wi})"
            );
        }
    }

    #[test]
    fn dc_bin_is_the_mean() {
        let n = 64;
        let sig = vec![0.5; n];
        let rfft = RealFft::new(n);
        let out = rfft.forward(&to_q15(&sig));
        let (re, im) = out[0].to_f64();
        // DC of the scaled transform = mean value.
        assert!((re - 0.5).abs() < 3e-3, "{re}");
        assert!(im.abs() < 1e-3);
        for c in &out[1..] {
            assert!(c.mag_sq() < 1e-4);
        }
    }

    #[test]
    fn tone_lands_in_its_bin() {
        let n = 512;
        let bin = 37;
        let sig: Vec<f64> = (0..n)
            .map(|i| 0.7 * (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64).cos())
            .collect();
        let rfft = RealFft::new(n);
        let ps = rfft.power_spectrum(&to_q15(&sig));
        let peak = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, bin);
    }

    #[test]
    fn nyquist_bin_is_real() {
        let n = 64;
        // Alternating signal = pure Nyquist tone.
        let sig: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let rfft = RealFft::new(n);
        let out = rfft.forward(&to_q15(&sig));
        let (re, im) = out[n / 2].to_f64();
        assert!(re.abs() > 0.4, "nyquist magnitude {re}");
        assert!(im.abs() < 2e-3, "nyquist must be real, got {im}");
    }

    #[test]
    #[should_panic(expected = "2^k ≥ 8")]
    fn rejects_tiny_sizes() {
        RealFft::new(4);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn rejects_wrong_length() {
        RealFft::new(64).forward(&[Q15::ZERO; 32]);
    }
}
