//! Shared `--telemetry <path>` output routine for the harness binaries.
//!
//! The split matters: the **trace** (`<path>`, JSONL of
//! [`dpm_telemetry::TraceLine`]) is deterministic and byte-comparable
//! across runs and `--jobs` settings — CI diffs it. The **profile**
//! (`<path>.profile`, JSONL of [`dpm_telemetry::ProfileLine`]) carries the
//! wall-clock span timings and is explicitly non-reproducible. The stderr
//! summary renders both, with the wall-clock section clearly labeled.
//!
//! A path of `-` streams the trace to **stdout** instead (the profile is
//! suppressed — there is no `-.profile` to write), so a harness pipes
//! straight into the analyzer: `repro --telemetry - | dpm-analyze audit -`.
//! Binaries that normally print results on stdout must route them to
//! stderr in this mode (see [`to_stdout`]) to keep the stream a clean
//! JSONL document.

use dpm_telemetry::Recorder;

/// True when `path` is the `-` sentinel: the deterministic trace goes to
/// stdout and the wall-clock profile is suppressed. Harness binaries use
/// this to divert their human-readable output to stderr.
pub fn to_stdout(path: &str) -> bool {
    path == "-"
}

/// The loud warning printed when the event ring dropped anything: a
/// truncated trace silently weakens every downstream analysis
/// (`dpm-analyze audit` skips its slot-sum checks), so the condition must
/// be impossible to miss in the run log. Returns `None` when nothing was
/// dropped or the recorder is disabled.
pub fn ring_warning(recorder: &Recorder) -> Option<String> {
    if !recorder.is_enabled() || recorder.dropped() == 0 {
        return None;
    }
    Some(format!(
        "WARNING: telemetry ring dropped {} event(s) ({} retained); the trace is \
         truncated and slot-sum audits are degraded — raise the ring capacity",
        recorder.dropped(),
        recorder.event_count()
    ))
}

/// Write the deterministic trace to `path` and the wall-clock profile to
/// `<path>.profile`, then print the human summary to stderr. Warns loudly
/// when the event ring overflowed. Does nothing for a disabled recorder.
///
/// When `path` is `-` the trace streams to stdout and the profile is
/// suppressed.
///
/// # Errors
/// Propagates [`std::io::Error`] when either file (or stdout) cannot be
/// written.
pub fn write_outputs(recorder: &Recorder, path: &str) -> Result<(), std::io::Error> {
    if !recorder.is_enabled() {
        return Ok(());
    }
    if to_stdout(path) {
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        out.write_all(recorder.to_jsonl().as_bytes())?;
        out.flush()?;
        eprint!("{}", recorder.summary());
        if let Some(warning) = ring_warning(recorder) {
            eprintln!("{warning}");
        }
        eprintln!("telemetry: trace -> stdout (wall-clock profile suppressed)");
        return Ok(());
    }
    std::fs::write(path, recorder.to_jsonl())?;
    std::fs::write(format!("{path}.profile"), recorder.profile_jsonl())?;
    eprint!("{}", recorder.summary());
    if let Some(warning) = ring_warning(recorder) {
        eprintln!("{warning}");
    }
    eprintln!("telemetry: trace -> {path}, wall-clock profile -> {path}.profile");
    Ok(())
}
