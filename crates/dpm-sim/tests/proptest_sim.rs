//! Property-based tests for the simulator substrate: battery accounting,
//! source determinism, and event-generator statistics.

use dpm_core::platform::BatteryLimits;
use dpm_core::prelude::*;
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, seconds, Joules};
use dpm_sim::prelude::*;
use proptest::prelude::*;

fn limits() -> BatteryLimits {
    BatteryLimits::new(joules(0.5), joules(16.0)).unwrap()
}

proptest! {
    /// Battery conservation: offered = stored delta + wasted + (losses),
    /// and delivered = demanded − undersupplied, for any op sequence.
    #[test]
    fn battery_accounting_balances(
        ops in prop::collection::vec((any::<bool>(), 0.0f64..6.0), 1..64),
        initial in 0.5f64..16.0,
    ) {
        let mut b = Battery::new(BatteryConfig::ideal(limits()), joules(initial)).unwrap();
        let start = b.level().value();
        let mut demanded = 0.0;
        for (is_charge, amount) in ops {
            if is_charge {
                b.charge(joules(amount));
            } else {
                demanded += amount;
                b.draw(joules(amount));
            }
        }
        let stored_delta = b.level().value() - start;
        // offered = stored gain + wasted + delivered-from-offer… with an
        // ideal battery: offered − wasted = stored_delta + delivered.
        let lhs = b.offered().value() - b.wasted().value();
        let rhs = stored_delta + b.delivered().value();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        // Undersupplied is exactly the unmet demand.
        prop_assert!(
            (b.delivered().value() + b.undersupplied().value() - demanded).abs() < 1e-9
        );
        // Level always inside [0, C_max].
        prop_assert!(b.level() >= Joules::ZERO && b.level() <= joules(16.0));
    }

    /// Battery level never leaves [C_min-floor, C_max] under draw, and
    /// never exceeds C_max under charge.
    #[test]
    fn battery_window_is_invariant(
        charges in prop::collection::vec(0.0f64..10.0, 1..32),
    ) {
        let mut b = Battery::new(BatteryConfig::ideal(limits()), joules(8.0)).unwrap();
        for c in charges {
            b.charge(joules(c));
            prop_assert!(b.level() <= joules(16.0));
            b.draw(joules(c * 0.7));
            prop_assert!(b.level() >= joules(0.5) - joules(1e-12));
        }
    }

    /// Trace sources integrate exactly: mean power over any window equals
    /// the series integral over that window.
    #[test]
    fn trace_source_mean_power_is_exact(
        values in prop::collection::vec(0.0f64..4.0, 12..=12),
        a in 0.0f64..57.6,
        w in 0.1f64..10.0,
    ) {
        let series = PowerSeries::new(seconds(4.8), values).unwrap();
        let src = TraceSource::new(series.clone());
        let mean = src.mean_power(seconds(a), seconds(w)).value();
        let expect = series
            .integral_wrapping(seconds(a % 57.6), seconds((a % 57.6) + w))
            .value() / w;
        prop_assert!((mean - expect).abs() < 1e-9, "{mean} vs {expect}");
    }

    /// Schedule generators hit the expected count over whole periods
    /// within one event (fractional carry).
    #[test]
    fn schedule_generator_counts_exact(
        rates in prop::collection::vec(0.0f64..1.0, 12..=12),
        periods in 1usize..6,
    ) {
        let series = PowerSeries::new(seconds(4.8), rates).unwrap();
        let expect = series.integral().value() * periods as f64;
        let mut g = ScheduleGenerator::new(series);
        let mut total = 0usize;
        for i in 0..(12 * periods) {
            total += g.arrivals(seconds(i as f64 * 4.8), seconds(4.8));
        }
        prop_assert!((total as f64 - expect).abs() <= 1.0, "{total} vs {expect}");
    }

    /// Poisson generators are seed-deterministic and mean-consistent for
    /// moderate rates.
    #[test]
    fn poisson_deterministic(seed in any::<u64>(), rate in 0.0f64..0.8) {
        let series = PowerSeries::constant(seconds(4.8), 12, rate).unwrap();
        let mut a = PoissonGenerator::new(series.clone(), seed);
        let mut b = PoissonGenerator::new(series, seed);
        for i in 0..12 {
            let t = seconds(i as f64 * 4.8);
            prop_assert_eq!(a.arrivals(t, seconds(4.8)), b.arrivals(t, seconds(4.8)));
        }
    }

    /// The noisy source never goes negative and stays within its band.
    #[test]
    fn noisy_source_bounded(seed in any::<u64>(), amp in 0.0f64..0.9) {
        let series = PowerSeries::constant(seconds(4.8), 12, 2.0).unwrap();
        let src = NoisySource::new(TraceSource::new(series), amp, seconds(4.8), seed);
        for i in 0..24 {
            let p = src.power(seconds(i as f64 * 2.4)).value();
            prop_assert!(p >= 0.0);
            prop_assert!(p <= 2.0 * (1.0 + amp) + 1e-9);
            prop_assert!(p >= 2.0 * (1.0 - amp) - 1e-9);
        }
    }

    /// Ring hop counts: src→dst→src always totals the full ring (or zero).
    #[test]
    fn ring_hops_complement(src in 0usize..8, dst in 0usize..8) {
        let ring = RingNetwork::new(RingConfig::pama());
        let there = ring.hops(src, dst);
        let back = ring.hops(dst, src);
        if src == dst {
            prop_assert_eq!(there + back, 0);
        } else {
            prop_assert_eq!(there + back, 8);
        }
    }
}

/// A governor that always asks for the same point (test fixture).
struct Pinned(OperatingPoint);

impl Governor for Pinned {
    fn name(&self) -> &str {
        "pinned"
    }

    fn decide(&mut self, _obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        Ok(self.0)
    }
}

/// Drive the full proposed-controller pipeline — series construction,
/// demand model, initial allocation, controller, simulation — mapping
/// every failure to its `Display` text. The no-panic properties below
/// only care that this function *returns*.
fn run_pipeline(slots: usize, sun: f64, rate: f64, battery0: f64) -> Result<(), String> {
    let platform = Platform::pama();
    let tau = platform.tau;
    let charging = PowerSeries::constant(tau, slots, sun).map_err(|e| e.to_string())?;
    let events = PowerSeries::constant(tau, slots, rate).map_err(|e| e.to_string())?;
    let demand = DemandModel::unweighted(events.clone()).map_err(|e| e.to_string())?;
    let problem = AllocationProblem {
        charging: charging.clone(),
        demand: demand.wpuf(),
        initial_charge: joules(battery0),
        limits: platform.battery,
        p_floor: platform.power.all_standby(),
        p_ceiling: platform.board_power(7, platform.f_max()),
    };
    let allocation = InitialAllocator::new(problem)
        .map_err(|e| e.to_string())?
        .compute()
        .map_err(|e| e.to_string())?;
    let mut governor = DpmController::new(platform.clone(), &allocation, charging.clone())
        .map_err(|e| e.to_string())?;
    let config = SimConfig {
        periods: 1,
        slots_per_period: slots,
        substeps: 2,
        trace: false,
    };
    let sim = Simulation::new(
        platform,
        Box::new(TraceSource::new(charging)),
        Box::new(ScheduleGenerator::new(events)),
        joules(battery0),
        config,
    )
    .map_err(|e| e.to_string())?;
    sim.run(&mut governor).map_err(|e| e.to_string())?;
    Ok(())
}

proptest! {
    /// Fallible-core contract, end to end: the whole pipeline either
    /// succeeds or reports a structured error with a human-readable
    /// message — it never panics. Degenerate scenarios (empty schedules,
    /// eclipse-only charging, battery levels outside the window) are
    /// exercised explicitly.
    #[test]
    fn pipeline_never_panics_on_degenerate_inputs(
        slots in 0usize..16,
        sun in 0.0f64..4.0,
        rate in 0.0f64..2.0,
        battery0 in 0.0f64..24.0,
        dark in any::<bool>(),
    ) {
        let sun = if dark { 0.0 } else { sun };
        if let Err(msg) = run_pipeline(slots, sun, rate, battery0) {
            prop_assert!(!msg.is_empty());
        }
        // The empty schedule in particular must be a structured rejection.
        if slots == 0 {
            prop_assert!(run_pipeline(slots, sun, rate, battery0).is_err());
        }
    }

    /// Cumulative undersupply in the per-slot trace is monotone
    /// non-decreasing under *any* sequence of charging dropouts (possibly
    /// overlapping, possibly past the horizon), and the last slot's value
    /// equals the report total — the invariant the survival metrics in
    /// `SurvivalReport` rely on.
    #[test]
    fn undersupply_monotone_under_random_dropouts(
        dropouts in prop::collection::vec((0.0f64..110.0, 1.0f64..60.0), 0..6),
        burst in 0usize..40,
    ) {
        let platform = Platform::pama();
        let tau = platform.tau;
        let charging = PowerSeries::constant(tau, 12, 1.5).unwrap();
        let events = PowerSeries::constant(tau, 12, 0.4).unwrap();
        let config = SimConfig {
            periods: 2,
            slots_per_period: 12,
            substeps: 4,
            trace: true,
        };
        let peak = ParetoTable::build(&platform).unwrap().peak().point;
        let mut pinned = Pinned(peak);
        let mut sim = Simulation::new(
            platform,
            Box::new(TraceSource::new(charging)),
            Box::new(ScheduleGenerator::new(events)),
            joules(8.0),
            config,
        ).unwrap();
        for &(at, dur) in &dropouts {
            sim.schedule(seconds(at), Disturbance::ChargingDropout { duration: seconds(dur) });
        }
        sim.schedule(seconds(0.0), Disturbance::EventBurst { count: burst });
        let report = sim.run(&mut pinned).unwrap();
        prop_assert_eq!(report.slots.len(), 24);
        let mut prev = 0.0f64;
        for s in &report.slots {
            prop_assert!(
                s.undersupplied + 1e-9 >= prev,
                "undersupply regressed at slot {}: {} < {prev}",
                s.slot,
                s.undersupplied,
            );
            prev = s.undersupplied;
        }
        prop_assert!((prev - report.undersupplied).abs() < 1e-9,
            "trace tail {prev} vs report {}", report.undersupplied);
    }

    /// The simulator itself stays total even when the governor is a
    /// trivial fixed-point policy: arbitrary finite charging traces
    /// (including all-zero and single-slot) produce a report or a
    /// structured `SimError`, never a panic.
    #[test]
    fn simulation_never_panics_on_arbitrary_schedules(
        values in prop::collection::vec(0.0f64..5.0, 1..16),
        rate in 0.0f64..2.0,
        battery0 in 0.0f64..24.0,
    ) {
        let platform = Platform::pama();
        let tau = platform.tau;
        let slots = values.len();
        let charging = PowerSeries::new(tau, values).unwrap();
        let events = PowerSeries::constant(tau, slots, rate).unwrap();
        let config = SimConfig {
            periods: 2,
            slots_per_period: slots,
            substeps: 3,
            trace: false,
        };
        let peak = ParetoTable::build(&platform).unwrap().peak().point;
        let mut pinned = Pinned(peak);
        let sim = Simulation::new(
            platform,
            Box::new(TraceSource::new(charging)),
            Box::new(ScheduleGenerator::new(events)),
            joules(battery0),
            config,
        );
        match sim {
            Ok(sim) => match sim.run(&mut pinned) {
                Ok(report) => prop_assert!(report.duration > 0.0),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            },
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}
