//! The power-measurement board: sampled power and per-interval energy
//! accounting ("A power measurement board is used to measure real-time
//! power consumption", §5). The controller's Algorithm 3 feedback loop
//! reads its per-slot energies.
//!
//! The same board carries the battery gauge, modelled here as
//! [`ChargeSensor`]: the charge value a governor *observes* each slot,
//! which fault injection ([`crate::sim::Disturbance::SensorNoise`] /
//! [`crate::sim::Disturbance::SensorStuck`]) can corrupt while the
//! physical battery keeps its true level.

use dpm_core::units::{joules, watts, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One sample in the meter's trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeterSample {
    /// Sample time (s).
    pub time: f64,
    /// Measured power (W).
    pub power: f64,
}

/// Accumulating energy meter with an optional sampled trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerMeter {
    total: f64,
    interval: f64,
    trace: Vec<MeterSample>,
    keep_trace: bool,
}

impl PowerMeter {
    /// A meter that only accumulates energies.
    pub fn new() -> Self {
        Self::default()
    }

    /// A meter that also records every sample.
    pub fn with_trace() -> Self {
        Self {
            keep_trace: true,
            ..Self::default()
        }
    }

    /// Record `power` drawn over `[t, t + dt)`.
    pub fn record(&mut self, t: Seconds, dt: Seconds, power: Watts) {
        assert!(dt.value() >= 0.0 && power.value() >= 0.0);
        let e = power.value() * dt.value();
        self.total += e;
        self.interval += e;
        if self.keep_trace {
            self.trace.push(MeterSample {
                time: t.value(),
                power: power.value(),
            });
        }
    }

    /// Energy since the last [`Self::lap`], and reset the interval counter
    /// — the controller calls this once per `τ`.
    pub fn lap(&mut self) -> Joules {
        let e = self.interval;
        self.interval = 0.0;
        joules(e)
    }

    /// Total energy ever recorded.
    pub fn total(&self) -> Joules {
        joules(self.total)
    }

    /// The sampled trace (empty unless built with [`Self::with_trace`]).
    pub fn trace(&self) -> &[MeterSample] {
        &self.trace
    }

    /// Mean power over the full recording, given its duration.
    pub fn mean_power(&self, duration: Seconds) -> Watts {
        watts(self.total / duration.value().max(1e-12))
    }
}

/// The battery gauge: maps the battery's true charge to the value the
/// governor observes. Fault-free it is the identity; a
/// [`crate::sim::Disturbance::SensorNoise`] injection multiplies readings
/// by a seeded relative error, and a
/// [`crate::sim::Disturbance::SensorStuck`] injection freezes the reading
/// at the value held when the fault hit.
///
/// Noise is a pure hash of `(seed, read index)` — no RNG state — so a run
/// is reproducible regardless of how the campaign is parallelized, the
/// same SplitMix64 idiom as [`crate::source::NoisySource`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChargeSensor {
    reads: u64,
    /// Active noise fault: (relative amplitude, expiry time s, seed).
    noise: Option<(f64, f64, u64)>,
    /// Active stuck fault: (held reading in J if captured, expiry time s).
    stuck: Option<(Option<f64>, f64)>,
}

impl ChargeSensor {
    /// A healthy gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inject relative noise of ±`amplitude` on readings until `until`.
    /// Non-finite or negative amplitudes are ignored (a glitched plan must
    /// not corrupt the gauge model itself).
    pub fn inject_noise(&mut self, amplitude: f64, until: Seconds, seed: u64) {
        if amplitude.is_finite() && amplitude >= 0.0 {
            self.noise = Some((amplitude, until.value(), seed));
        }
    }

    /// Freeze readings at the next observed value until `until`.
    pub fn inject_stuck(&mut self, until: Seconds) {
        self.stuck = Some((None, until.value()));
    }

    /// Whether a fault is active at time `t`.
    pub fn is_faulty(&self, t: Seconds) -> bool {
        self.noise.is_some_and(|(_, until, _)| t.value() < until)
            || self.stuck.is_some_and(|(_, until)| t.value() < until)
    }

    /// Read the gauge at time `t` given the battery's true charge.
    /// Expired faults clear themselves; a stuck fault captures the first
    /// reading after injection and repeats it; noise multiplies the true
    /// value by `1 + ε` with `ε` hashed from `(seed, read index)`.
    /// Readings are clamped non-negative.
    pub fn read(&mut self, t: Seconds, actual: Joules) -> Joules {
        self.reads += 1;
        if let Some((held, until)) = self.stuck {
            if t.value() < until {
                let value = held.unwrap_or(actual.value());
                self.stuck = Some((Some(value), until));
                return joules(value.max(0.0));
            }
            self.stuck = None;
        }
        if let Some((amplitude, until, seed)) = self.noise {
            if t.value() < until {
                // SplitMix64 over (seed, read index).
                let mut z = seed ^ self.reads.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let u = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                let eps = (2.0 * u - 1.0) * amplitude;
                return joules((actual.value() * (1.0 + eps)).max(0.0));
            }
            self.noise = None;
        }
        actual
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::seconds;

    #[test]
    fn accumulates_energy() {
        let mut m = PowerMeter::new();
        m.record(seconds(0.0), seconds(2.0), watts(3.0));
        m.record(seconds(2.0), seconds(1.0), watts(1.0));
        assert!(m.total().approx_eq(joules(7.0), 1e-12));
    }

    #[test]
    fn lap_resets_interval_only() {
        let mut m = PowerMeter::new();
        m.record(seconds(0.0), seconds(1.0), watts(2.0));
        assert_eq!(m.lap(), joules(2.0));
        assert_eq!(m.lap(), Joules::ZERO);
        m.record(seconds(1.0), seconds(1.0), watts(4.0));
        assert_eq!(m.lap(), joules(4.0));
        assert_eq!(m.total(), joules(6.0));
    }

    #[test]
    fn trace_is_optional() {
        let mut plain = PowerMeter::new();
        plain.record(seconds(0.0), seconds(1.0), watts(1.0));
        assert!(plain.trace().is_empty());

        let mut tracing = PowerMeter::with_trace();
        tracing.record(seconds(0.0), seconds(1.0), watts(1.0));
        tracing.record(seconds(1.0), seconds(1.0), watts(2.0));
        assert_eq!(tracing.trace().len(), 2);
        assert_eq!(tracing.trace()[1].power, 2.0);
    }

    #[test]
    fn mean_power_over_duration() {
        let mut m = PowerMeter::new();
        m.record(seconds(0.0), seconds(4.0), watts(2.0));
        assert!((m.mean_power(seconds(8.0)).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn healthy_sensor_is_identity() {
        let mut s = ChargeSensor::new();
        assert_eq!(s.read(seconds(0.0), joules(8.0)), joules(8.0));
        assert!(!s.is_faulty(seconds(0.0)));
    }

    #[test]
    fn stuck_sensor_repeats_the_captured_reading_until_expiry() {
        let mut s = ChargeSensor::new();
        s.inject_stuck(seconds(10.0));
        assert!(s.is_faulty(seconds(0.0)));
        assert_eq!(s.read(seconds(1.0), joules(7.0)), joules(7.0));
        assert_eq!(s.read(seconds(5.0), joules(3.0)), joules(7.0));
        // After expiry the gauge heals and tracks the true level again.
        assert_eq!(s.read(seconds(11.0), joules(2.0)), joules(2.0));
        assert!(!s.is_faulty(seconds(11.0)));
    }

    #[test]
    fn noisy_sensor_is_bounded_and_deterministic() {
        let mut a = ChargeSensor::new();
        let mut b = ChargeSensor::new();
        a.inject_noise(0.2, seconds(100.0), 7);
        b.inject_noise(0.2, seconds(100.0), 7);
        let mut saw_error = false;
        for i in 0..32 {
            let t = seconds(i as f64);
            let ra = a.read(t, joules(8.0));
            let rb = b.read(t, joules(8.0));
            assert_eq!(ra, rb, "same seed, same readings");
            assert!(ra.value() >= 8.0 * 0.8 - 1e-9 && ra.value() <= 8.0 * 1.2 + 1e-9);
            if (ra.value() - 8.0).abs() > 1e-6 {
                saw_error = true;
            }
        }
        assert!(saw_error, "noise should actually perturb readings");
    }

    #[test]
    fn noise_seeds_differ() {
        let mut a = ChargeSensor::new();
        let mut b = ChargeSensor::new();
        a.inject_noise(0.2, seconds(100.0), 1);
        b.inject_noise(0.2, seconds(100.0), 2);
        let differs = (0..16).any(|i| {
            a.read(seconds(i as f64), joules(8.0)) != b.read(seconds(i as f64), joules(8.0))
        });
        assert!(differs);
    }

    #[test]
    fn invalid_noise_amplitude_is_ignored() {
        let mut s = ChargeSensor::new();
        s.inject_noise(f64::NAN, seconds(100.0), 1);
        s.inject_noise(-0.5, seconds(100.0), 1);
        assert!(!s.is_faulty(seconds(0.0)));
        assert_eq!(s.read(seconds(0.0), joules(4.0)), joules(4.0));
    }
}
