//! Typed errors for every fallible entry point of the crate.
//!
//! The crate draws a single line between two kinds of misbehaviour:
//!
//! * **Input-reachable conditions** — anything a caller can trigger with
//!   runtime data (schedules read from telemetry, hand-built platforms,
//!   battery windows, observations) — surface as a [`DpmError`] through a
//!   `Result`. Constructors validate once; everything downstream may then
//!   assume the invariants.
//! * **Internal invariants** — properties the validated constructors
//!   already guarantee (slot alignment inside a pipeline, frontier
//!   non-emptiness after a successful build) — are checked with
//!   `debug_assert!` only and carry documentation instead of a branch.
//!
//! Binaries map a `DpmError` to a human-readable message on stderr and a
//! nonzero exit code; see `dpm-bench`'s `repro` and `sweep`.

use serde::Serialize;

/// Everything that can go wrong across the §4.1–§4.3 pipeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum DpmError {
    /// A power series or trajectory was malformed (empty, non-positive
    /// slot width, wrong shape for the operation).
    InvalidSeries(String),
    /// A numeric input was NaN or infinite; the message names it.
    NonFinite(String),
    /// Two schedules that must share slotting do not.
    SeriesMismatch {
        /// Slots expected (from the reference schedule).
        expected: usize,
        /// Slots actually provided.
        got: usize,
    },
    /// A rolling plan or redistribution window contained no slots.
    EmptyScheduleWindow,
    /// A platform description failed validation; the message says how.
    InvalidPlatform(String),
    /// A scalar parameter was out of its documented range.
    InvalidParameter {
        /// Parameter name as it appears in the API.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// Algorithm 1 reached a fixed point whose trajectory still violates
    /// the battery window: the problem is over-constrained (e.g. the
    /// standby floor alone drains below `C_min` in eclipse).
    InfeasibleAllocation {
        /// Rounds completed before the fixed point.
        iterations: usize,
    },
    /// Algorithm 1 exhausted its iteration budget without converging.
    ConvergenceFailure {
        /// The iteration budget that was spent.
        iterations: usize,
    },
    /// A battery capacity window was inverted or negative.
    BatteryLimitViolation {
        /// Requested `C_min` (J).
        c_min: f64,
        /// Requested `C_max` (J).
        c_max: f64,
    },
    /// No operating point satisfies the request (e.g. a frequency beyond
    /// `g(v_max)`, or a governor given an all-off point to hold).
    NoOperatingPoint(String),
}

impl std::fmt::Display for DpmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidSeries(msg) => write!(f, "invalid series: {msg}"),
            Self::NonFinite(what) => write!(f, "non-finite value: {what}"),
            Self::SeriesMismatch { expected, got } => {
                write!(f, "series mismatch: expected {expected} slots, got {got}")
            }
            Self::EmptyScheduleWindow => write!(f, "schedule window contains no slots"),
            Self::InvalidPlatform(msg) => write!(f, "invalid platform: {msg}"),
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Self::InfeasibleAllocation { iterations } => write!(
                f,
                "allocation infeasible: fixed point after {iterations} iteration(s) \
                 still violates the battery window"
            ),
            Self::ConvergenceFailure { iterations } => write!(
                f,
                "allocation did not converge within {iterations} iteration(s)"
            ),
            Self::BatteryLimitViolation { c_min, c_max } => write!(
                f,
                "invalid battery window: need 0 <= C_min < C_max, got \
                 C_min = {c_min} J, C_max = {c_max} J"
            ),
            Self::NoOperatingPoint(msg) => write!(f, "no operating point: {msg}"),
        }
    }
}

impl std::error::Error for DpmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DpmError::SeriesMismatch {
            expected: 12,
            got: 6,
        };
        assert_eq!(e.to_string(), "series mismatch: expected 12 slots, got 6");
        let e = DpmError::ConvergenceFailure { iterations: 16 };
        assert!(e.to_string().contains("16 iteration"));
        let e = DpmError::BatteryLimitViolation {
            c_min: 5.0,
            c_max: 1.0,
        };
        assert!(e.to_string().contains("C_min < C_max"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&DpmError::EmptyScheduleWindow);
    }

    #[test]
    fn serializes_for_reports() {
        let e = DpmError::InfeasibleAllocation { iterations: 7 };
        let s = serde_json::to_string(&e).unwrap();
        assert!(s.contains("InfeasibleAllocation"), "{s}");
    }
}
