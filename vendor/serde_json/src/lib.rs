//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! [`Content`] data model to JSON text and parses it back. Covers the
//! surface this workspace uses (`to_string`, `to_string_pretty`,
//! `from_str`) with exact `f64` round-tripping (shortest-representation
//! formatting).

use serde::{Content, Deserialize, Serialize};

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(|e| Error(e.to_string()))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Content::Null),
            Some(b't') if self.literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error("invalid UTF-8 in string".into()))?,
                    );
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}
