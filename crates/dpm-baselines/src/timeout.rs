//! The time-out governor: "the simplest and most widely used technique for
//! dynamic power management … components are turned off after a fixed
//! amount of idling time" (paper §1).

use dpm_core::error::DpmError;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::OperatingPoint;

/// Fixed-point governor with an idle time-out before powering down.
#[derive(Debug, Clone)]
pub struct TimeoutGovernor {
    point: OperatingPoint,
    timeout_slots: u64,
    idle_slots: u64,
}

impl TimeoutGovernor {
    /// Run at `point` while busy; stay on through `timeout_slots` idle
    /// slots before turning off (0 degenerates to [`super::StaticGovernor`]
    /// behaviour).
    ///
    /// # Errors
    /// [`DpmError::InvalidParameter`] if `point` is off.
    pub fn new(point: OperatingPoint, timeout_slots: u64) -> Result<Self, DpmError> {
        if point.is_off() {
            return Err(DpmError::InvalidParameter {
                name: "point",
                reason: "the active point must do work".into(),
            });
        }
        Ok(Self {
            point,
            timeout_slots,
            idle_slots: 0,
        })
    }

    /// Slots currently spent idle.
    pub fn idle_slots(&self) -> u64 {
        self.idle_slots
    }
}

impl Governor for TimeoutGovernor {
    fn name(&self) -> &str {
        "timeout"
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        Ok(if obs.backlog > 0 {
            self.idle_slots = 0;
            self.point
        } else {
            self.idle_slots += 1;
            if self.idle_slots <= self.timeout_slots {
                self.point // still within the hold window
            } else {
                OperatingPoint::OFF
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::{joules, volts, Hertz, Joules, Seconds};

    fn point() -> OperatingPoint {
        OperatingPoint::new(2, Hertz::from_mhz(40.0), volts(3.3))
    }

    fn obs(slot: u64, backlog: usize) -> SlotObservation {
        SlotObservation {
            slot,
            time: Seconds(slot as f64 * 4.8),
            battery: joules(8.0),
            used_last: Joules::ZERO,
            supplied_last: Joules::ZERO,
            backlog,
        }
    }

    #[test]
    fn stays_on_through_the_holdoff() {
        let mut g = TimeoutGovernor::new(point(), 2).unwrap();
        assert!(!g.decide(&obs(0, 1)).unwrap().is_off()); // busy
        assert!(!g.decide(&obs(1, 0)).unwrap().is_off()); // idle 1
        assert!(!g.decide(&obs(2, 0)).unwrap().is_off()); // idle 2
        assert!(g.decide(&obs(3, 0)).unwrap().is_off()); // idle 3 > timeout
    }

    #[test]
    fn work_resets_the_timer() {
        let mut g = TimeoutGovernor::new(point(), 1).unwrap();
        g.decide(&obs(0, 0)).unwrap();
        g.decide(&obs(1, 1)).unwrap(); // busy resets
        assert_eq!(g.idle_slots(), 0);
        assert!(!g.decide(&obs(2, 0)).unwrap().is_off());
        assert!(g.decide(&obs(3, 0)).unwrap().is_off());
    }

    #[test]
    fn zero_timeout_behaves_like_static() {
        let mut g = TimeoutGovernor::new(point(), 0).unwrap();
        assert!(!g.decide(&obs(0, 1)).unwrap().is_off());
        assert!(g.decide(&obs(1, 0)).unwrap().is_off());
    }

    #[test]
    fn rejects_off_point() {
        use dpm_core::error::DpmError;
        assert!(matches!(
            TimeoutGovernor::new(OperatingPoint::OFF, 2),
            Err(DpmError::InvalidParameter { name: "point", .. })
        ));
    }
}
