//! Serialization round-trips: schedules, scenarios, reports and traces are
//! part of the public interchange surface (the repro harness exports JSON
//! for plotting), so they must survive serde exactly.

use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_core::series::PowerSeries;
use dpm_core::units::seconds;
use dpm_workloads::{scenarios, Scenario};

#[test]
fn power_series_roundtrip() {
    let s = PowerSeries::new(seconds(4.8), vec![2.36, 0.0, 1.18, 3.54]).unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: PowerSeries = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
}

#[test]
fn scenario_roundtrip() {
    for s in scenarios::all() {
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

#[test]
fn platform_roundtrip() {
    let p = Platform::pama();
    let json = serde_json::to_string(&p).unwrap();
    let back: Platform = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
    assert!(back.validate().is_ok());
}

#[test]
fn sim_report_roundtrip() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut g = experiments::proposed_controller(&platform, &s).unwrap();
    let report = experiments::run_governor(&platform, &s, &mut g, 2).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: dpm_sim::stats::SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn controller_trace_roundtrip() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let (trace, _) = experiments::table3_5(&platform, &s, 1).unwrap();
    let json = serde_json::to_string(&trace).unwrap();
    let back: Vec<dpm_core::runtime::ControllerRecord> = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
}

#[test]
fn table1_rows_roundtrip() {
    let platform = Platform::pama();
    let rows = experiments::table1(&platform, &scenarios::all(), 1).unwrap();
    let json = serde_json::to_string(&rows).unwrap();
    let back: Vec<experiments::Table1Row> = serde_json::from_str(&json).unwrap();
    assert_eq!(rows, back);
}

#[test]
fn disturbance_roundtrip() {
    use dpm_sim::sim::Disturbance;
    let all = vec![
        Disturbance::SupplyScale {
            factor: 0.5,
            duration: seconds(20.0),
        },
        Disturbance::EventBurst { count: 40 },
        Disturbance::ChargingDropout {
            duration: seconds(60.0),
        },
        Disturbance::ProcessorFault { index: 3 },
        Disturbance::ProcessorRecover { index: 3 },
        Disturbance::BatteryFade { factor: 0.75 },
        Disturbance::SensorNoise {
            amplitude: 0.2,
            duration: seconds(30.0),
            seed: 7,
        },
        Disturbance::SensorStuck {
            duration: seconds(15.0),
        },
    ];
    let json = serde_json::to_string(&all).unwrap();
    let back: Vec<Disturbance> = serde_json::from_str(&json).unwrap();
    assert_eq!(all, back);
}

#[test]
fn fault_plan_roundtrip() {
    use dpm_workloads::{faults, FaultPlan, FaultPlanConfig};
    let plan = faults::generate(42, &FaultPlanConfig::standard(seconds(230.4)));
    assert!(!plan.is_empty());
    let json = serde_json::to_string(&plan).unwrap();
    let back: FaultPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(plan, back);
    // The config itself is part of the interchange surface too (campaign
    // manifests record what was injected).
    let config = FaultPlanConfig::standard(seconds(230.4));
    let json = serde_json::to_string(&config).unwrap();
    let back: FaultPlanConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
}

#[test]
fn survival_report_roundtrip() {
    use dpm_sim::stats::SurvivalReport;
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut g = experiments::proposed_controller(&platform, &s).unwrap();
    let report = experiments::run_governor(&platform, &s, &mut g, 2).unwrap();
    let survival = SurvivalReport::from_report(&report, 0.5, 2.0, 3);
    let json = serde_json::to_string(&survival).unwrap();
    let back: SurvivalReport = serde_json::from_str(&json).unwrap();
    assert_eq!(survival, back);
}

#[test]
fn degradation_trace_roundtrip() {
    use dpm_core::governor::{Governor, SlotObservation};
    use dpm_core::runtime::{DegradationRecord, SafetyGovernor};
    use dpm_core::units::joules;
    let platform = Platform::pama();
    let inner = dpm_baselines::StaticGovernor::full_power(&platform).unwrap();
    let mut safe = SafetyGovernor::with_defaults(inner, &platform).unwrap();
    // Drive the wrapper into the guard band so the trace is non-trivial.
    for slot in 0..4u64 {
        let obs = SlotObservation {
            slot,
            time: seconds(slot as f64 * 4.8),
            battery: joules(if slot < 2 { 1.0 } else { 8.0 }),
            used_last: joules(0.0),
            supplied_last: joules(0.0),
            backlog: 0,
        };
        safe.decide(&obs).unwrap();
    }
    let trace = safe.take_trace();
    assert!(!trace.is_empty());
    let json = serde_json::to_string(&trace).unwrap();
    let back: Vec<DegradationRecord> = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
}
