//! Quickstart: the full pipeline of the paper in ~80 lines.
//!
//! 1. describe the machine (the PAMA satellite board);
//! 2. give the §2 inputs — expected charging `c(t)`, event rates `u(t)`,
//!    weight `w(t)`;
//! 3. §4.1: compute the initial power allocation;
//! 4. §4.2: turn it into a discrete `(n, f)` schedule;
//! 5. §4.3: run the feedback controller against a simulated environment.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dpm_bench::experiments;
use dpm_core::prelude::*;
use dpm_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. the machine ---------------------------------------------------
    let platform = Platform::pama();
    println!(
        "platform: {} processors ({} workers), f ∈ {:?} MHz, τ = {}",
        platform.processors,
        platform.workers(),
        platform
            .frequencies
            .iter()
            .map(|f| f.mhz())
            .collect::<Vec<_>>(),
        platform.tau,
    );

    // --- 2. the §2 inputs ---------------------------------------------------
    let tau = platform.tau;
    // Sun for half the 57.6 s orbit, eclipse after.
    let charging = PowerSeries::new(
        tau,
        vec![
            2.36, 2.36, 2.36, 2.36, 2.36, 2.36, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
        ],
    )?;
    // Twin-peak event-rate schedule, weighted uniformly.
    let rates = PowerSeries::new(
        tau,
        vec![1.1, 0.7, 0.2, 0.2, 0.7, 1.2, 1.1, 0.7, 0.2, 0.2, 0.7, 1.2],
    )?;
    let demand = DemandModel::unweighted(rates.clone())?;

    // --- 3. §4.1 initial power allocation -----------------------------------
    let problem = AllocationProblem {
        charging: charging.clone(),
        demand: demand.wpuf(),
        initial_charge: joules(8.0),
        limits: platform.battery,
        p_floor: platform.power.all_standby(),
        p_ceiling: platform.board_power(platform.workers(), platform.f_max()),
    };
    let allocation = InitialAllocator::new(problem)?.compute()?;
    println!(
        "\n§4.1 allocation converged in {} iteration(s), feasible = {}",
        allocation.iterations.len(),
        allocation.feasible
    );
    println!(
        "  P_init (W/slot): {:?}",
        allocation
            .allocation
            .values()
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // --- 4. §4.2 discrete parameter schedule --------------------------------
    let scheduler = ParameterScheduler::new(platform.clone())?;
    let schedule = scheduler.plan(&allocation.allocation, &charging, joules(8.0))?;
    println!("\n§4.2 schedule ({} switches):", schedule.switch_count());
    for slot in &schedule.slots {
        println!(
            "  t = {:>5.1} s  budget {:>5.2} W  →  {}",
            slot.slot as f64 * tau.value(),
            slot.budget.value(),
            slot.point
        );
    }

    // --- 5. §4.3 run the controller in the loop -----------------------------
    let mut governor = DpmController::new(platform.clone(), &allocation, charging.clone())?;
    let sim = Simulation::new(
        platform,
        Box::new(TraceSource::new(charging)),
        Box::new(ScheduleGenerator::new(rates)),
        joules(8.0),
        SimConfig::default(),
    )?;
    let report = sim.run(&mut governor)?;
    println!("\n§4.3 two-period simulation:");
    println!("  {}", report.summary());
    println!(
        "  energy available: {:.1} J, delivered {:.1} J, final battery {:.1} J",
        report.offered, report.delivered, report.final_battery
    );

    // Bonus: the same experiment functions the repro harness uses.
    let rows = experiments::table1(
        &Platform::pama(),
        &dpm_workloads::scenarios::all(),
        experiments::DEFAULT_PERIODS,
    )?;
    let proposed = rows.iter().find(|r| r.governor == "proposed").unwrap();
    let statik = rows.iter().find(|r| r.governor == "static").unwrap();
    println!(
        "\nTable 1 headline: proposed wastes {:.1} J vs static {:.1} J on scenario I",
        proposed.wasted[0], statik.wasted[0]
    );
    Ok(())
}
