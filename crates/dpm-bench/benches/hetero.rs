//! §6-extension ablation bench: the per-processor (mixed-frequency)
//! frontier vs. the paper's homogeneous table — frontier sizes, build and
//! lookup cost, and the throughput gained at equal power budgets — plus
//! the heterogeneous-pool greedy allocator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_core::params::hetero::{plan_mixed, HeteroAllocator, MixedFrequencyTable, ProcessorClass};
use dpm_core::params::ParetoTable;
use dpm_core::platform::Platform;
use dpm_core::units::watts;
use std::hint::black_box;

fn bench_mixed_table(c: &mut Criterion) {
    let platform = Platform::pama();
    let mixed = MixedFrequencyTable::build(&platform);
    let homo = ParetoTable::build(&platform).unwrap();
    println!(
        "[hetero] homogeneous frontier: {} points; mixed-frequency frontier: {} points",
        homo.frontier().len(),
        mixed.frontier().len()
    );
    // Throughput gain at equal budgets.
    let budgets: Vec<f64> = (1..=22).map(|i| 0.2 * i as f64).collect();
    let plan = plan_mixed(&mixed, &budgets);
    let mixed_jobs = plan.total_jobs(4.8);
    let homo_jobs: f64 = budgets
        .iter()
        .map(|&b| homo.best_within(watts(b)).perf.value() * 4.8)
        .sum();
    println!(
        "[hetero] jobs over a budget sweep: homogeneous {homo_jobs:.2}, mixed {mixed_jobs:.2} (+{:.1}%)",
        100.0 * (mixed_jobs / homo_jobs - 1.0)
    );

    c.bench_function("hetero/mixed_table_build", |b| {
        b.iter(|| black_box(MixedFrequencyTable::build(&platform)))
    });
    c.bench_function("hetero/mixed_plan_period", |b| {
        b.iter(|| black_box(plan_mixed(&mixed, &budgets)))
    });
}

fn bench_hetero_allocator(c: &mut Criterion) {
    let classes = vec![
        ProcessorClass {
            name: "pim".into(),
            count: 7,
            speed: 1.0,
            chip_power: watts(0.546),
        },
        ProcessorClass {
            name: "dsp".into(),
            count: 2,
            speed: 3.0,
            chip_power: watts(1.2),
        },
        ProcessorClass {
            name: "mcu".into(),
            count: 4,
            speed: 0.3,
            chip_power: watts(0.12),
        },
    ];
    let alloc = HeteroAllocator::new(classes).unwrap();
    let mut group = c.benchmark_group("hetero/greedy_allocate");
    for budget in [0.5f64, 2.0, 6.0] {
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, &w| {
            b.iter(|| black_box(alloc.allocate(watts(w))))
        });
    }
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_mixed_table, bench_hetero_allocator
}
criterion_main!(benches);
