//! Plain-text rendering of the reproduced tables and figures, in the
//! paper's layouts.

use crate::experiments::{FigureSeries, Table1Row};
use dpm_core::alloc::AllocationIteration;
use dpm_core::runtime::ControllerRecord;
use std::fmt::Write;

/// Render Table 1 ("Comparison of algorithms").
pub fn table1(rows: &[Table1Row], scenario_names: &[&str]) -> String {
    let mut out = String::new();
    writeln!(out, "Table 1  Comparison of algorithms").unwrap();
    write!(out, "{:<12} {:<22}", "Algorithm", "Metric").unwrap();
    for name in scenario_names {
        write!(out, " {:>12}", name).unwrap();
    }
    writeln!(out).unwrap();
    writeln!(out, "{}", "-".repeat(36 + 13 * scenario_names.len())).unwrap();
    for row in rows {
        write!(out, "{:<12} {:<22}", row.governor, "Wasted energy").unwrap();
        for w in &row.wasted {
            write!(out, " {:>10.2} J", w).unwrap();
        }
        writeln!(out).unwrap();
        write!(out, "{:<12} {:<22}", "", "Undersupplied energy").unwrap();
        for u in &row.undersupplied {
            write!(out, " {:>10.2} J", u).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Render Tables 2/4 ("Initial power allocation computation").
pub fn table2_4(iterations: &[AllocationIteration], title: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    let n = iterations[0].allocation.len();
    let tau = iterations[0].allocation.slot_width().value();
    write!(out, "{:<10}", "Time (s)").unwrap();
    for i in 0..n {
        write!(out, " {:>6.1}", i as f64 * tau).unwrap();
    }
    writeln!(out).unwrap();
    for (k, it) in iterations.iter().enumerate() {
        write!(out, "{:<2} Pinit  ", k + 1).unwrap();
        for &v in it.allocation.values() {
            write!(out, " {:>6.2}", v).unwrap();
        }
        writeln!(out).unwrap();
        write!(out, "   Integr.").unwrap();
        // The paper prints the running integration at slot ends.
        for i in 1..=n {
            write!(out, " {:>6.2}", it.trajectory.points()[i]).unwrap();
        }
        writeln!(out, "   {}", if it.feasible { "(feasible)" } else { "" }).unwrap();
    }
    out
}

/// Render Tables 3/5 ("Dynamic update of the power allocation").
pub fn table3_5(trace: &[ControllerRecord], title: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    let plan_len = trace.first().map_or(0, |r| r.plan.len());
    write!(
        out,
        "{:>7} {:>8} {:>6} {:>9}",
        "t (s)", "Pinit(t)", "Used", "Supplied"
    )
    .unwrap();
    for i in 0..plan_len {
        write!(out, " {:>5}", format!("P({i})")).unwrap();
    }
    writeln!(out).unwrap();
    for r in trace {
        write!(
            out,
            "{:>7.1} {:>8.2} {:>6.2} {:>9.2}",
            r.time,
            r.allocated.value(),
            r.selected_power.value(),
            r.actual_supply_last.value(),
        )
        .unwrap();
        // The controller stores a rolling window (plan[0] = next slot);
        // the paper's columns are absolute slot positions, so rotate.
        let n = r.plan.len();
        for j in 0..n {
            let i = (j + n - (r.slot as usize + 1) % n) % n;
            write!(out, " {:>5.2}", r.plan[i]).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Render a figure as an ASCII chart plus the raw series.
pub fn figure(f: &FigureSeries, title: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    let max = f
        .charging
        .iter()
        .chain(&f.use_power)
        .cloned()
        .fold(0.1_f64, f64::max);
    let height = 12usize;
    for level in (1..=height).rev() {
        let threshold = max * level as f64 / height as f64;
        write!(out, "{:>5.2} |", threshold).unwrap();
        for i in 0..f.time.len() {
            let c = f.charging[i] + 1e-12 >= threshold;
            let u = f.use_power[i] + 1e-12 >= threshold;
            let ch = match (c, u) {
                (true, true) => '#',
                (true, false) => 'c',
                (false, true) => 'u',
                _ => ' ',
            };
            write!(out, " {ch}  ").unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "      +").unwrap();
    for _ in 0..f.time.len() {
        write!(out, "----").unwrap();
    }
    writeln!(out, "  (c = charging, u = use, # = both)").unwrap();
    write!(out, "  t(s) ").unwrap();
    for t in &f.time {
        write!(out, "{:>4.0}", t).unwrap();
    }
    writeln!(out).unwrap();
    writeln!(out, "  charging: {:?}", f.charging).unwrap();
    writeln!(out, "  use:      {:?}", f.use_power).unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;
    use dpm_core::platform::Platform;
    use dpm_workloads::scenarios;

    #[test]
    fn table1_renders_all_rows() {
        let rows = vec![Table1Row {
            governor: "proposed".into(),
            wasted: vec![13.68, 6.18],
            undersupplied: vec![23.11, 6.27],
            jobs: vec![40, 50],
            utilization: vec![0.5, 0.6],
        }];
        let s = table1(&rows, &["Scenario 1", "Scenario 2"]);
        assert!(s.contains("proposed"));
        assert!(s.contains("13.68"));
        assert!(s.contains("Undersupplied"));
    }

    #[test]
    fn table2_renders_iterations() {
        let platform = Platform::pama();
        let iters = experiments::table2_4(&platform, &scenarios::scenario_one()).unwrap();
        let s = table2_4(&iters, "Table 2");
        assert!(s.contains("Pinit"));
        assert!(s.contains("(feasible)"));
    }

    #[test]
    fn table3_renders_trace() {
        let platform = Platform::pama();
        let (trace, _) = experiments::table3_5(&platform, &scenarios::scenario_one(), 1).unwrap();
        let s = table3_5(&trace, "Table 3");
        assert!(s.contains("Pinit(t)"));
        assert!(s.contains("P(11)"));
        assert_eq!(s.lines().count(), 2 + trace.len());
    }

    #[test]
    fn figure_renders_ascii_chart() {
        let f = experiments::figure(&scenarios::scenario_one());
        let s = figure(&f, "Figure 3");
        assert!(s.contains("charging"));
        assert!(s.contains('c') || s.contains('#'));
    }
}
