//! `sweep` — parameter sweeps around the paper's operating point, to map
//! where the proposed algorithm's advantage comes from and where it
//! crosses over.
//!
//! ```text
//! sweep battery              # waste/undersupply vs. battery window size
//! sweep sunlit               # vs. sunlit fraction of the orbit
//! sweep noise                # vs. supply-forecast error
//! sweep load                 # vs. event-rate scaling
//! sweep                      # all of the above
//! sweep --jobs 4             # fan points across 4 worker threads
//! DPM_JOBS=4 sweep           # same, via the environment
//! sweep --telemetry t.jsonl  # structured trace + wall-clock profile
//! ```
//!
//! Output is CSV on stdout (one block per sweep), byte-identical for any
//! worker count; a timing summary goes to stderr. Worker-count priority:
//! `--jobs N`, then `DPM_JOBS`, then the machine's available parallelism.
//! `--telemetry PATH` writes the deterministic JSONL trace to `PATH` and
//! the wall-clock span profile to `PATH.profile`; the trace is
//! byte-identical across repeated runs and worker counts. `--telemetry -`
//! streams the trace to stdout instead (profile suppressed, CSV moves to
//! stderr), for piping into `dpm-analyze audit -`.
//! Exit codes: 0 on success, 1 when a sweep point fails (infeasible
//! scenario, simulation error — the failing point emits an `error` CSV row
//! and the remaining points still run), 2 on a usage error.
//!
//! All the actual work lives in [`dpm_bench::sweeps`]; this binary only
//! parses arguments and routes the output.

use dpm_bench::runner;
use dpm_bench::sweeps;
use dpm_bench::telemetry_out;
use dpm_telemetry::Recorder;

fn usage() -> String {
    format!(
        "usage: sweep [--jobs N] [--telemetry PATH] [{}]...\n\
         worker count: --jobs N, else ${}, else available parallelism",
        sweeps::SWEEP_NAMES.join("|"),
        runner::JOBS_ENV,
    )
}

fn main() {
    let mut selected: Vec<String> = Vec::new();
    let mut jobs_cli: Option<usize> = None;
    let mut telemetry_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path),
                None => {
                    eprintln!("--telemetry requires a path\n{}", usage());
                    std::process::exit(2);
                }
            },
            "--jobs" | "-j" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n >= 1 => jobs_cli = Some(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            name if sweeps::SWEEP_NAMES.contains(&name) => selected.push(a),
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                std::process::exit(2);
            }
        }
    }

    let jobs = runner::resolve_jobs(jobs_cli);
    let telemetry = match telemetry_path {
        Some(_) => Recorder::enabled("sweep"),
        None => Recorder::disabled(),
    };
    // With `--telemetry -` the trace owns stdout; the CSV moves to stderr
    // so the stream stays a clean JSONL document for piping.
    let trace_on_stdout = telemetry_path
        .as_deref()
        .is_some_and(telemetry_out::to_stdout);
    match sweeps::run_with(&selected, jobs, sweeps::DEFAULT_PERIODS, &telemetry) {
        Ok(outcome) => {
            if trace_on_stdout {
                eprint!("{}", outcome.csv);
            } else {
                print!("{}", outcome.csv);
            }
            eprintln!("sweep: {}", outcome.stats.summary());
            if let Some(path) = telemetry_path {
                if let Err(e) = telemetry_out::write_outputs(&telemetry, &path) {
                    eprintln!("sweep: cannot write telemetry to {path}: {e}");
                    std::process::exit(1);
                }
            }
            if outcome.failures > 0 {
                eprintln!(
                    "sweep: {} point(s) failed (see error rows)",
                    outcome.failures
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("sweep: {e}");
            std::process::exit(1);
        }
    }
}
