//! Run-time machinery (§4.3): Algorithm 3's power-allocation update and the
//! controller-processor logic that drives the whole Fig. 1 loop every `τ`.

mod adaptive;
mod controller;
mod update;

pub use adaptive::AdaptiveDpmController;
pub use controller::{ControllerRecord, DpmController};
pub use update::{redistribute, RedistributeOutcome};
