//! `sweep` — parameter sweeps around the paper's operating point, to map
//! where the proposed algorithm's advantage comes from and where it
//! crosses over.
//!
//! ```text
//! sweep battery    # waste/undersupply vs. battery window size
//! sweep sunlit     # vs. sunlit fraction of the orbit
//! sweep noise      # vs. supply-forecast error
//! sweep load       # vs. event-rate scaling
//! sweep            # all of the above
//! ```
//!
//! Output is CSV on stdout (one block per sweep), ready for plotting.
//! Exit codes: 0 on success, 1 when a sweep point fails (infeasible
//! scenario, simulation error), 2 on an unknown sweep name.

use dpm_baselines::StaticGovernor;
use dpm_bench::experiments;
use dpm_core::platform::{BatteryLimits, Platform};
use dpm_core::runtime::DpmController;
use dpm_core::units::joules;
use dpm_sim::prelude::*;
use dpm_workloads::{scenarios, OrbitScenarioBuilder, Scenario};

const PERIODS: usize = 4;

const SWEEPS: [&str; 4] = ["battery", "sunlit", "noise", "load"];

fn run_pair(
    platform: &Platform,
    scenario: &Scenario,
    seed: Option<u64>,
) -> Result<(SimReport, SimReport), SimError> {
    let run = |gov: &mut dyn dpm_core::governor::Governor| -> Result<SimReport, SimError> {
        let source: Box<dyn ChargingSource> = match seed {
            Some(s) => Box::new(NoisySource::new(
                TraceSource::new(scenario.charging.clone()),
                0.2,
                platform.tau,
                s,
            )),
            None => Box::new(TraceSource::new(scenario.charging.clone())),
        };
        Simulation::new(
            platform.clone(),
            source,
            Box::new(ScheduleGenerator::new(scenario.event_rates(platform))),
            scenario.initial_charge,
            SimConfig {
                periods: PERIODS,
                slots_per_period: scenario.charging.len(),
                substeps: 8,
                trace: false,
            },
        )?
        .run(gov)
    };
    let alloc = experiments::initial_allocation(platform, scenario)?;
    let mut proposed = DpmController::new(platform.clone(), &alloc, scenario.charging.clone())?;
    let rp = run(&mut proposed)?;
    let mut statik = StaticGovernor::full_power(platform)?;
    let rs = run(&mut statik)?;
    Ok((rp, rs))
}

fn emit_header(sweep: &str, param: &str) {
    println!("sweep,{param},governor,wasted_j,undersupplied_j,jobs,utilization");
    let _ = sweep;
}

fn emit(sweep: &str, value: f64, r: &SimReport) {
    println!(
        "{sweep},{value},{},{:.3},{:.3},{},{:.4}",
        r.governor,
        r.wasted,
        r.undersupplied,
        r.jobs_done,
        r.utilization()
    );
}

fn sweep_battery() -> Result<(), SimError> {
    emit_header("battery", "cmax_j");
    let s = scenarios::scenario_one();
    for cmax in [4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
        let mut platform = Platform::pama();
        platform.battery = BatteryLimits::new(joules(0.5), joules(cmax))?;
        let mut scenario = s.clone();
        scenario.initial_charge = joules(0.5 * (0.5 + cmax));
        let (rp, rs) = run_pair(&platform, &scenario, None)?;
        emit("battery", cmax, &rp);
        emit("battery", cmax, &rs);
    }
    Ok(())
}

fn sweep_sunlit() -> Result<(), SimError> {
    emit_header("sunlit", "fraction");
    for f in [0.25, 0.4, 0.5, 0.65, 0.8] {
        let scenario = OrbitScenarioBuilder::new(format!("sun-{f}"))
            .sunlit_fraction(f)
            .demand_base(0.5)
            .demand_peak(2, 1.2)
            .demand_peak(8, 0.9)
            .build()?;
        let platform = Platform::pama();
        let (rp, rs) = run_pair(&platform, &scenario, None)?;
        emit("sunlit", f, &rp);
        emit("sunlit", f, &rs);
    }
    Ok(())
}

fn sweep_noise() -> Result<(), SimError> {
    emit_header("noise", "seed");
    let s = scenarios::scenario_one();
    let platform = Platform::pama();
    for seed in 1..=5u64 {
        let (rp, rs) = run_pair(&platform, &s, Some(seed))?;
        emit("noise", seed as f64, &rp);
        emit("noise", seed as f64, &rs);
    }
    Ok(())
}

fn sweep_load() -> Result<(), SimError> {
    emit_header("load", "rate_scale");
    let base = scenarios::scenario_one();
    let platform = Platform::pama();
    for k in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let mut scenario = base.clone();
        scenario.use_power = base.use_power.scale(k);
        let (rp, rs) = run_pair(&platform, &scenario, None)?;
        emit("load", k, &rp);
        emit("load", k, &rs);
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        if !SWEEPS.contains(&a.as_str()) {
            eprintln!(
                "unknown sweep `{a}`; valid sweeps are: {}",
                SWEEPS.join(" ")
            );
            std::process::exit(2);
        }
    }
    let all = args.is_empty();
    let want = |k: &str| all || args.iter().any(|a| a == k);
    let run = || -> Result<(), SimError> {
        if want("battery") {
            sweep_battery()?;
        }
        if want("sunlit") {
            sweep_sunlit()?;
        }
        if want("noise") {
            sweep_noise()?;
        }
        if want("load") {
            sweep_load()?;
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("sweep: {e}");
        std::process::exit(1);
    }
}
