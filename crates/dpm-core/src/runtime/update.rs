//! Algorithm 3: dynamic update of the power allocation.
//!
//! Every `τ` the controller measures the deviation between planned and
//! actual energy,
//!
//! ```text
//! E_diff = ∫ₜ₋τᵗ (P_init(v) − P_actual(v)) dv
//! ```
//!
//! and folds it back into the *future* allocation:
//!
//! * `E_diff > 0` (used less than planned, or supply exceeded the
//!   forecast): the battery will run ahead of plan and pin at `C_max`
//!   sooner — any surplus remaining then is wasted. So spend the surplus
//!   *before* that moment: find the first future time `w` where the planned
//!   trajectory reaches `C_max` and raise the allocation on `[t, w)`
//!   proportionally to its current shape.
//! * `E_diff < 0` (overspent / undersupplied): the trajectory will hit
//!   `C_min` sooner; shave the allocation on `[t, w)` (where `w` is the
//!   first `C_min` pin) proportionally.
//!
//! Proportional scaling (the paper's `P_init(v)·E_diff / ∫P_init`)
//! preserves the allocation's *shape* — slots the WPUF weighted heavily
//! absorb more of the correction. Physical power bounds are respected by
//! clamping and re-spreading any clamped remainder over the rest of the
//! window, so the correction is conserved whenever the window can absorb
//! it.

use crate::error::DpmError;
use crate::platform::BatteryLimits;
use crate::units::{Joules, Seconds, Watts};

/// What [`redistribute`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct RedistributeOutcome {
    /// Number of future slots (from the front of the plan) that were
    /// rescaled.
    pub horizon_slots: usize,
    /// Energy actually folded into the plan (equals the requested `e_diff`
    /// unless power bounds clipped it).
    pub applied: Joules,
}

/// Apply Algorithm 3 to a rolling future plan.
///
/// * `plan` — planned dissipation (W) for the upcoming slots; `plan[0]` is
///   the slot about to run. Modified in place.
/// * `charging` — forecast supply (W), aligned with `plan`.
/// * `slot` — slot width `τ`.
/// * `battery_now` — measured charge at the start of `plan[0]`.
/// * `e_diff` — planned-minus-actual deviation to fold in (J).
/// * `bounds` — physical (floor, ceiling) dissipation of the board.
///
/// # Errors
/// [`DpmError::SeriesMismatch`] when plan and forecast disagree on length,
/// [`DpmError::EmptyScheduleWindow`] when there are no future slots to
/// absorb the correction.
pub fn redistribute(
    plan: &mut [f64],
    charging: &[f64],
    slot: Seconds,
    battery_now: Joules,
    limits: BatteryLimits,
    e_diff: Joules,
    bounds: (Watts, Watts),
) -> Result<RedistributeOutcome, DpmError> {
    if plan.len() != charging.len() {
        return Err(DpmError::SeriesMismatch {
            expected: plan.len(),
            got: charging.len(),
        });
    }
    if plan.is_empty() {
        return Err(DpmError::EmptyScheduleWindow);
    }
    if e_diff.value().abs() < 1e-12 {
        return Ok(RedistributeOutcome {
            horizon_slots: 0,
            applied: Joules::ZERO,
        });
    }

    let horizon = pin_horizon(plan, charging, slot, battery_now, limits, e_diff);
    let applied = scale_window(&mut plan[..horizon], slot, e_diff, bounds);
    Ok(RedistributeOutcome {
        horizon_slots: horizon,
        applied,
    })
}

/// Find the redistribution horizon: the first future slot boundary where
/// the *planned* battery trajectory pins at `C_max` (surplus case) or
/// `C_min` (deficit case). Returns at least 1 and at most `plan.len()`.
fn pin_horizon(
    plan: &[f64],
    charging: &[f64],
    slot: Seconds,
    battery_now: Joules,
    limits: BatteryLimits,
    e_diff: Joules,
) -> usize {
    let surplus = e_diff.value() > 0.0;
    let mut level = battery_now.value();
    for (i, (&p, &c)) in plan.iter().zip(charging).enumerate() {
        level += (c - p) * slot.value();
        let pinned = if surplus {
            level >= limits.c_max.value() - 1e-9
        } else {
            level <= limits.c_min.value() + 1e-9
        };
        if pinned {
            return (i + 1).max(1);
        }
    }
    plan.len()
}

/// Scale `window` so its integral changes by `e_diff`, respecting bounds.
/// Returns the energy actually applied.
///
/// Allocation-free two-pass form of the proportional re-spread. Per outer
/// pass, pass A walks the still-open bracket in ascending index order to
/// count the open slots and sum their values (the same additions, in the
/// same order, the old `open: Vec<usize>` gather produced), and pass B
/// applies the shares in that same order. Pass B may re-evaluate the
/// openness predicate at visit time because only already-visited indices
/// have been mutated within a pass — slot `i` still holds its pre-pass
/// value when tested — so the visited set matches pass A exactly and the
/// results are bit-identical to [`reference::redistribute`] (pinned by
/// proptest).
fn scale_window(
    window: &mut [f64],
    slot: Seconds,
    e_diff: Joules,
    bounds: (Watts, Watts),
) -> Joules {
    let (floor, ceiling) = (bounds.0.value(), bounds.1.value());
    let raising = e_diff.value() > 0.0;
    let is_open = |v: f64| {
        if raising {
            v < ceiling - 1e-12
        } else {
            v > floor + 1e-12
        }
    };
    let mut remaining = e_diff.value();
    // A slot closed in the required direction can never reopen within one
    // call (raising only moves values toward the ceiling, shaving toward
    // the floor, and closed slots are never mutated), so the open region
    // only shrinks: [lo, hi) brackets it across passes. Each pass either
    // applies everything or saturates at least one more slot, so at most
    // `len` passes run.
    let mut lo = 0usize;
    let mut hi = window.len();
    for _ in 0..window.len() {
        if remaining.abs() < 1e-12 {
            break;
        }
        let mut open_count = 0usize;
        let mut value_sum = 0.0;
        let mut first_open = usize::MAX;
        let mut last_open = lo;
        for (off, &v) in window[lo..hi].iter().enumerate() {
            if is_open(v) {
                open_count += 1;
                value_sum += v;
                if first_open == usize::MAX {
                    first_open = lo + off;
                }
                last_open = lo + off + 1;
            }
        }
        if open_count == 0 {
            break;
        }
        lo = first_open;
        hi = last_open;
        // The paper's proportional-to-value rule over the open slots; fall
        // back to uniform when those slots are all-zero.
        let total = value_sum * slot.value();
        let per_slot_energy = remaining / open_count as f64;
        let mut applied_this_pass = 0.0;
        for v in window[lo..hi].iter_mut() {
            let cur = *v;
            if !is_open(cur) {
                continue;
            }
            let share = if total.abs() > 1e-12 {
                remaining * (cur * slot.value()) / total
            } else {
                per_slot_energy
            };
            let desired = cur + share / slot.value();
            let clamped = desired.clamp(floor, ceiling);
            applied_this_pass += (clamped - cur) * slot.value();
            *v = clamped;
        }
        remaining -= applied_this_pass;
        if applied_this_pass.abs() < 1e-12 {
            break; // open slots are all-zero and floor-pinned
        }
    }
    e_diff - Joules(remaining)
}

/// The pre-optimization Algorithm 3, kept verbatim as the oracle for the
/// bit-identity proptests (`tests/proptest_hotpath.rs`). Not part of the
/// public API surface.
#[doc(hidden)]
pub mod reference {
    use super::RedistributeOutcome;
    use crate::error::DpmError;
    use crate::platform::BatteryLimits;
    use crate::units::{Joules, Seconds, Watts};

    /// Original per-pass-allocating [`super::redistribute`].
    ///
    /// # Errors
    /// Same conditions as [`super::redistribute`].
    pub fn redistribute(
        plan: &mut [f64],
        charging: &[f64],
        slot: Seconds,
        battery_now: Joules,
        limits: BatteryLimits,
        e_diff: Joules,
        bounds: (Watts, Watts),
    ) -> Result<RedistributeOutcome, DpmError> {
        if plan.len() != charging.len() {
            return Err(DpmError::SeriesMismatch {
                expected: plan.len(),
                got: charging.len(),
            });
        }
        if plan.is_empty() {
            return Err(DpmError::EmptyScheduleWindow);
        }
        if e_diff.value().abs() < 1e-12 {
            return Ok(RedistributeOutcome {
                horizon_slots: 0,
                applied: Joules::ZERO,
            });
        }

        let horizon = super::pin_horizon(plan, charging, slot, battery_now, limits, e_diff);
        let applied = scale_window(&mut plan[..horizon], slot, e_diff, bounds);
        Ok(RedistributeOutcome {
            horizon_slots: horizon,
            applied,
        })
    }

    fn scale_window(
        window: &mut [f64],
        slot: Seconds,
        e_diff: Joules,
        bounds: (Watts, Watts),
    ) -> Joules {
        let (floor, ceiling) = (bounds.0.value(), bounds.1.value());
        let raising = e_diff.value() > 0.0;
        let mut remaining = e_diff.value();
        for _ in 0..window.len() {
            if remaining.abs() < 1e-12 {
                break;
            }
            let open: Vec<usize> = (0..window.len())
                .filter(|&i| {
                    if raising {
                        window[i] < ceiling - 1e-12
                    } else {
                        window[i] > floor + 1e-12
                    }
                })
                .collect();
            if open.is_empty() {
                break;
            }
            let total: f64 = open.iter().map(|&i| window[i]).sum::<f64>() * slot.value();
            let per_slot_energy = remaining / open.len() as f64;
            let mut applied_this_pass = 0.0;
            for &i in &open {
                let share = if total.abs() > 1e-12 {
                    remaining * (window[i] * slot.value()) / total
                } else {
                    per_slot_energy
                };
                let desired = window[i] + share / slot.value();
                let clamped = desired.clamp(floor, ceiling);
                applied_this_pass += (clamped - window[i]) * slot.value();
                window[i] = clamped;
            }
            remaining -= applied_this_pass;
            if applied_this_pass.abs() < 1e-12 {
                break;
            }
        }
        e_diff - Joules(remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{joules, seconds, watts};

    fn limits() -> BatteryLimits {
        BatteryLimits::new(joules(0.5), joules(16.0)).unwrap()
    }

    fn bounds() -> (Watts, Watts) {
        (watts(0.05), watts(4.4))
    }

    #[test]
    fn zero_diff_is_a_no_op() {
        let mut plan = vec![1.0, 2.0, 3.0];
        let charging = vec![0.0; 3];
        let before = plan.clone();
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(4.8),
            joules(8.0),
            limits(),
            Joules::ZERO,
            bounds(),
        )
        .unwrap();
        assert_eq!(plan, before);
        assert_eq!(out.applied, Joules::ZERO);
    }

    #[test]
    fn surplus_raises_future_allocation_proportionally() {
        let mut plan = vec![1.0, 2.0, 1.0, 2.0];
        let charging = vec![1.5; 4];
        let before_integral: f64 = plan.iter().sum::<f64>() * 4.8;
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(4.8),
            joules(8.0),
            limits(),
            joules(2.4),
            bounds(),
        )
        .unwrap();
        let after_integral: f64 = plan.iter().sum::<f64>() * 4.8;
        assert!((after_integral - before_integral - 2.4).abs() < 1e-9);
        assert!(out.applied.approx_eq(joules(2.4), 1e-9));
        // Proportionality within the horizon: the 2.0-slots grew twice as
        // much as the 1.0-slots.
        let g0 = plan[0] - 1.0;
        let g1 = plan[1] - 2.0;
        assert!((g1 / g0 - 2.0).abs() < 1e-6, "g0={g0} g1={g1}");
    }

    #[test]
    fn deficit_shaves_future_allocation() {
        let mut plan = vec![2.0, 2.0, 2.0];
        let charging = vec![2.0; 3];
        redistribute(
            &mut plan,
            &charging,
            seconds(4.8),
            joules(8.0),
            limits(),
            joules(-4.8),
            bounds(),
        )
        .unwrap();
        let total: f64 = plan.iter().sum::<f64>() * 4.8;
        assert!((total - (3.0 * 2.0 * 4.8 - 4.8)).abs() < 1e-9);
        assert!(plan.iter().all(|&p| p < 2.0));
    }

    #[test]
    fn surplus_horizon_stops_at_cmax_pin() {
        // Charging far exceeds the plan: battery pins at C_max after ~2
        // slots; only those slots should absorb the surplus.
        let mut plan = vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        let charging = vec![2.0; 6];
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(4.8),
            joules(8.0),
            limits(),
            joules(1.0),
            bounds(),
        )
        .unwrap();
        assert!(out.horizon_slots < 6, "horizon = {}", out.horizon_slots);
        // Slots beyond the horizon untouched.
        for &p in &plan[out.horizon_slots..] {
            assert_eq!(p, 0.5);
        }
    }

    #[test]
    fn deficit_horizon_stops_at_cmin_pin() {
        // Plan drains the battery: pins at C_min quickly.
        let mut plan = vec![3.0; 6];
        let charging = vec![0.0; 6];
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(4.8),
            joules(8.0),
            limits(),
            joules(-2.0),
            bounds(),
        )
        .unwrap();
        assert!(out.horizon_slots <= 2, "horizon = {}", out.horizon_slots);
        for &p in &plan[out.horizon_slots..] {
            assert_eq!(p, 3.0);
        }
    }

    #[test]
    fn ceiling_clips_and_respreads() {
        // First slot already near ceiling; surplus must flow to later slots.
        let mut plan = vec![4.3, 1.0, 1.0];
        let charging = vec![0.5; 3];
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(1.0),
            joules(8.0),
            limits(),
            joules(3.0),
            bounds(),
        )
        .unwrap();
        assert!(plan[0] <= 4.4 + 1e-12);
        assert!(out.applied.approx_eq(joules(3.0), 1e-6), "{:?}", out);
        let total: f64 = plan.iter().sum();
        assert!((total - (6.3 + 3.0)).abs() < 1e-6);
    }

    #[test]
    fn saturated_window_reports_partial_application() {
        let mut plan = vec![4.4, 4.4];
        let charging = vec![0.0; 2];
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(1.0),
            joules(8.0),
            limits(),
            joules(5.0),
            bounds(),
        )
        .unwrap();
        assert_eq!(out.applied, Joules::ZERO);
        assert_eq!(plan, vec![4.4, 4.4]);
    }

    #[test]
    fn zero_plan_spreads_uniformly() {
        let mut plan = vec![0.05, 0.05, 0.05, 0.05];
        let charging = vec![0.0; 4];
        // Plan at floor integrates to ~0; surplus should still be absorbed.
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(1.0),
            joules(8.0),
            limits(),
            joules(2.0),
            bounds(),
        )
        .unwrap();
        assert!(out.applied.value() > 1.9, "{:?} {:?}", out, plan);
        let spread = plan[0] - 0.05;
        assert!(plan.iter().all(|&p| (p - 0.05 - spread).abs() < 0.6));
    }

    #[test]
    fn floor_limits_deficit_shaving() {
        let mut plan = vec![0.1, 0.1];
        let charging = vec![0.0; 2];
        let out = redistribute(
            &mut plan,
            &charging,
            seconds(1.0),
            joules(8.0),
            limits(),
            joules(-5.0),
            bounds(),
        )
        .unwrap();
        assert!(plan.iter().all(|&p| p >= 0.05 - 1e-12));
        // Only (0.1−0.05)·2 = 0.1 J could be shaved.
        assert!(out.applied.approx_eq(joules(-0.1), 1e-9), "{:?}", out);
    }

    #[test]
    fn misaligned_inputs_rejected() {
        let mut plan = vec![1.0];
        assert!(matches!(
            redistribute(
                &mut plan,
                &[1.0, 2.0],
                seconds(1.0),
                joules(1.0),
                limits(),
                joules(1.0),
                bounds(),
            ),
            Err(DpmError::SeriesMismatch {
                expected: 1,
                got: 2
            })
        ));
        assert!(matches!(
            redistribute(
                &mut [],
                &[],
                seconds(1.0),
                joules(1.0),
                limits(),
                joules(1.0),
                bounds(),
            ),
            Err(DpmError::EmptyScheduleWindow)
        ));
    }
}
