//! Cross-crate consistency between the FFT substrate and the power models:
//! the cycle model that sets `τ` must agree with dpm-core's Amdahl
//! workload, and the actual fixed-point detection chain must behave like
//! the job the simulator schedules.

use dpm_core::model::PerfModel;
use dpm_core::platform::Platform;
use dpm_core::units::{seconds, Hertz};
use dpm_fft::prelude::*;

#[test]
fn cycle_model_agrees_with_platform_workload() {
    let platform = Platform::pama();
    let model = CycleModel::pama_fft();
    // The PAMA platform's workload is the paper's measurement; the cycle
    // model reproduces the same calibration point.
    let t_model = model.job_time(2048, Hertz::from_mhz(20.0));
    assert!((t_model.value() - platform.workload.total.value()).abs() < 1e-9);
    assert!((platform.tau.value() - 4.8).abs() < 1e-12);
}

#[test]
fn amdahl_export_matches_eq3_throughput() {
    let model = CycleModel::pama_fft();
    let workload = model.as_workload(2048, Hertz::from_mhz(20.0));
    let platform = Platform::pama();
    let perf = PerfModel::new(workload, platform.vf.clone());
    for n in [1usize, 3, 7] {
        for mhz in [20.0, 40.0, 80.0] {
            let f = Hertz::from_mhz(mhz);
            let tp = perf.throughput(n, f, platform.v_max).value();
            let t = model.parallel_job_time(2048, n, f).value();
            assert!(
                (tp * t - 1.0).abs() < 1e-9,
                "n={n} f={mhz}: throughput {tp} vs job time {t}"
            );
        }
    }
}

#[test]
fn twelve_slots_fit_one_period_exactly() {
    // τ is one 2K FFT at 20 MHz; the paper's period holds 12 such slots.
    let model = CycleModel::pama_fft();
    let tau = model.job_time(2048, Hertz::from_mhz(20.0));
    assert!((57.6 / tau.value() - 12.0).abs() < 1e-9);
}

#[test]
fn detection_chain_runs_within_the_modelled_budget() {
    // The host runs the real fixed-point chain far faster than the 20 MHz
    // PIM, but the *work* (butterfly count) must match what the cycle
    // model charges for.
    let detector = TransientDetector::new(DetectorConfig::default());
    let capture = generate(&CaptureSpec::with_transient(), 5);
    let result = detector.detect(&capture);
    assert!(result.triggered);
    assert_eq!(butterflies(2048), 2048 / 2 * 11);
}

#[test]
fn forkjoin_speedup_is_consistent_with_amdahl_serial_fraction() {
    // Measure the fork-join executor's serial fraction and check the
    // simulator's 8% assumption is the right order of magnitude.
    let capture = generate(&CaptureSpec::with_transient(), 11);
    let mut data = quantize(&capture);
    let fft = ForkJoinFft::new(2048, 7);
    let times = fft.transform(&mut data);
    let measured = times.serial_fraction();
    // Host-side scatter/transpose/gather is memory-bound; accept a broad
    // band but insist it is a *minority* share, as the Amdahl model needs.
    assert!(
        measured < 0.6,
        "serial fraction {measured} too large for the fork-join model"
    );
}

#[test]
fn detector_work_matches_event_job_semantics() {
    // Every enqueued simulator job represents one 2K capture analysis; run
    // a batch through the real chain to confirm one capture = one job's
    // worth of butterflies, detected or not.
    let detector = TransientDetector::new(DetectorConfig::default());
    let mut confirmed = 0;
    for seed in 200..220u64 {
        let c = generate(&CaptureSpec::with_transient(), seed);
        if detector.detect(&c).is_event {
            confirmed += 1;
        }
    }
    assert!(confirmed >= 16, "detector too weak: {confirmed}/20");
}

#[test]
fn frequency_scaling_preserves_job_energy_ordering() {
    // Under Eq. 4/6 with fixed voltage, energy per job is frequency-
    // independent for the dynamic part but the standby floor favours
    // racing: check the model reflects that.
    let platform = Platform::pama();
    let model = CycleModel::pama_fft();
    let e = |mhz: f64| {
        let f = Hertz::from_mhz(mhz);
        let t = model.job_time(2048, f);
        (platform.board_power(1, f) * t).value()
    };
    let (e20, e80) = (e(20.0), e(80.0));
    // Dynamic energy equal, standby share of the slower run makes it
    // slightly *more* expensive per job.
    assert!(e20 > e80, "e20 {e20} vs e80 {e80}");
    assert!((e20 - e80) / e80 < 0.2, "floor share too large");
}

#[test]
fn window_plus_fft_pipeline_is_deterministic() {
    let detector = TransientDetector::new(DetectorConfig::default());
    let capture = generate(&CaptureSpec::with_transient(), 77);
    let a = detector.detect(&capture);
    let b = detector.detect(&capture);
    assert_eq!(a, b);
}

#[test]
fn job_time_monotone_in_fft_size() {
    let model = CycleModel::pama_fft();
    let mut last = seconds(0.0);
    for k in 8..14 {
        let t = model.job_time(1 << k, Hertz::from_mhz(20.0));
        assert!(t.value() > last.value());
        last = t;
    }
}
