//! Serialization round-trips: schedules, scenarios, reports and traces are
//! part of the public interchange surface (the repro harness exports JSON
//! for plotting), so they must survive serde exactly.

use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_core::series::PowerSeries;
use dpm_core::units::seconds;
use dpm_workloads::{scenarios, Scenario};

#[test]
fn power_series_roundtrip() {
    let s = PowerSeries::new(seconds(4.8), vec![2.36, 0.0, 1.18, 3.54]).unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: PowerSeries = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
}

#[test]
fn scenario_roundtrip() {
    for s in scenarios::all() {
        let json = serde_json::to_string(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

#[test]
fn platform_roundtrip() {
    let p = Platform::pama();
    let json = serde_json::to_string(&p).unwrap();
    let back: Platform = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
    assert!(back.validate().is_ok());
}

#[test]
fn sim_report_roundtrip() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut g = experiments::proposed_controller(&platform, &s).unwrap();
    let report = experiments::run_governor(&platform, &s, &mut g, 2).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: dpm_sim::stats::SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}

#[test]
fn controller_trace_roundtrip() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let (trace, _) = experiments::table3_5(&platform, &s, 1).unwrap();
    let json = serde_json::to_string(&trace).unwrap();
    let back: Vec<dpm_core::runtime::ControllerRecord> = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
}

#[test]
fn table1_rows_roundtrip() {
    let platform = Platform::pama();
    let rows = experiments::table1(&platform, &scenarios::all(), 1).unwrap();
    let json = serde_json::to_string(&rows).unwrap();
    let back: Vec<experiments::Table1Row> = serde_json::from_str(&json).unwrap();
    assert_eq!(rows, back);
}
