//! Fault-injection campaigns: governor × fault-plan survival matrices.
//!
//! The `campaign` binary is a thin shell over this module so the CSV
//! generation is testable: [`run`] must produce **byte-identical** output
//! for any worker count (the runner collects results by point index,
//! never by completion order — the same contract as [`crate::sweeps`]).
//!
//! Each campaign point runs one governor through scenario I with a seeded
//! [`FaultPlan`](dpm_workloads::FaultPlan) injected (charging dropouts,
//! event bursts, a fail-stop processor fault with recovery, a battery
//! fade, a gauge glitch) and reports the survival metrics of
//! [`SurvivalReport`]: deepest charge, time below the guard band,
//! undersupplied energy, missed events, recovery latency, and the number
//! of degradation transitions the safety wrapper recorded. The matrix
//! crosses every seed with four governors — the proposed controller and
//! the full-power static baseline, each bare and wrapped in a
//! [`SafetyGovernor`] — so one CSV answers both "does the wrapper save
//! the mission?" and "what does it cost when nothing goes wrong?".
//!
//! **Failure isolation:** a point that errors reports an `error` CSV row
//! without aborting sibling points; [`CampaignOutcome::failures`] counts
//! them so the binary keeps the exit-code contract (1 when any point
//! failed). A *replan* failure inside a safety-wrapped governor is not a
//! point failure: the wrapper degrades to its static fallback and the
//! point still reports survival metrics plus the degradation count.

use crate::experiments::AllocCache;
use crate::runner::{self, RunStats};
use dpm_baselines::StaticGovernor;
use dpm_core::platform::Platform;
use dpm_core::runtime::{DpmController, SafetyConfig, SafetyGovernor};
use dpm_core::units::seconds;
use dpm_sim::prelude::*;
use dpm_telemetry::Recorder;
use dpm_workloads::{faults, scenarios, FaultPlanConfig, Scenario};
use std::fmt::Write as _;
use std::sync::Arc;

/// Charging periods each campaign point simulates. Campaigns keep the
/// per-slot trace (the survival metrics need it), so points are shorter
/// than sweep points.
pub const DEFAULT_PERIODS: usize = 8;

/// Fault-plan seeds a default campaign draws.
pub const DEFAULT_SEEDS: u64 = 8;

/// The governor arms of the matrix, in output order.
pub const GOVERNOR_NAMES: [&str; 4] = ["proposed", "proposed+safe", "static", "static+safe"];

/// One prepared campaign point: everything a worker needs, read-only.
struct CampaignPoint {
    governor: &'static str,
    seed: u64,
    platform: Arc<Platform>,
    scenario: Arc<Scenario>,
    periods: usize,
}

/// The assembled result of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The CSV matrix, identical for every worker count.
    pub csv: String,
    /// Runner statistics (wall clock, per-job timings).
    pub stats: RunStats,
    /// Number of points that reported an error row.
    pub failures: usize,
}

/// Run a `seeds × governors` campaign on up to `jobs` worker threads,
/// simulating `periods` charging periods per point.
///
/// # Errors
/// Returns [`SimError`] only for *setup* failures. Per-point simulation
/// failures do not abort the run; they appear as error rows and in
/// [`CampaignOutcome::failures`].
pub fn run(seeds: u64, jobs: usize, periods: usize) -> Result<CampaignOutcome, SimError> {
    run_with(seeds, jobs, periods, &Recorder::disabled())
}

/// [`run`] with telemetry: each point records into its own sibling
/// recorder (controller counters, per-slot simulator events, the safety
/// wrapper's `safety.*` degradation events, and `sim.disturbance` events
/// from the fault plan), absorbed into `telemetry` in point order as
/// `campaign/{governor}/{seed}` — byte-identical for any worker count.
///
/// # Errors
/// Same contract as [`run`].
pub fn run_with(
    seeds: u64,
    jobs: usize,
    periods: usize,
    telemetry: &Recorder,
) -> Result<CampaignOutcome, SimError> {
    let platform = Arc::new(Platform::pama());
    let scenario = Arc::new(scenarios::scenario_one());
    let mut points = Vec::with_capacity(seeds as usize * GOVERNOR_NAMES.len());
    for seed in 1..=seeds {
        for governor in GOVERNOR_NAMES {
            points.push(CampaignPoint {
                governor,
                seed,
                platform: Arc::clone(&platform),
                scenario: Arc::clone(&scenario),
                periods,
            });
        }
    }

    let cache = AllocCache::new();
    let siblings: Vec<Recorder> = points.iter().map(|_| telemetry.sibling()).collect();
    let (results, stats) = runner::run_indexed(&points, jobs, |i, p| {
        run_point_with(p, &cache, &siblings[i])
    });
    for (point, sibling) in points.iter().zip(&siblings) {
        telemetry.absorb(
            &format!("campaign/{}/{}", point.governor, point.seed),
            sibling,
        );
    }
    stats.record_into(telemetry, "campaign");

    let mut csv = String::from(
        "scenario,seed,governor,survived,deepest_j,below_guard_s,undersupplied_j,\
         missed,recovery_s,degradations,jobs_done\n",
    );
    let mut failures = 0usize;
    for (point, slot) in points.iter().zip(results) {
        let outcome = match slot {
            Ok(r) => r,
            Err(panic) => Err(SimError::WorkerPanic(panic.to_string())),
        };
        match outcome {
            Ok(s) => {
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{:.4},{:.1},{:.4},{},{:.1},{},{}",
                    point.scenario.name,
                    point.seed,
                    point.governor,
                    u8::from(s.survived),
                    s.deepest_charge,
                    s.time_below_guard,
                    s.undersupplied,
                    s.missed_events,
                    s.recovery_latency,
                    s.degradations,
                    s.jobs_done,
                );
            }
            Err(e) => {
                failures += 1;
                let _ = writeln!(
                    csv,
                    "{},{},{},error,{},,,,,,",
                    point.scenario.name,
                    point.seed,
                    point.governor,
                    sanitize(&e.to_string()),
                );
            }
        }
    }

    Ok(CampaignOutcome {
        csv,
        stats,
        failures,
    })
}

/// CSV fields must stay one column each: strip separators/newlines from
/// error messages. Shared with [`crate::fleet`]'s error rows.
pub(crate) fn sanitize(msg: &str) -> String {
    msg.replace([',', '\n', '\r'], ";")
}

/// Run one governor arm against one seeded fault plan, recording into the
/// point's own recorder (sequential within the job, so deterministic).
fn run_point_with(
    point: &CampaignPoint,
    cache: &AllocCache,
    telemetry: &Recorder,
) -> Result<SurvivalReport, SimError> {
    let platform = point.platform.as_ref();
    let scenario = point.scenario.as_ref();
    let slots = scenario.charging.len();
    let horizon = seconds(point.periods as f64 * slots as f64 * platform.tau.value());
    let plan = faults::generate(point.seed, &FaultPlanConfig::standard(horizon));

    let mut sim = Simulation::new(
        Arc::clone(&point.platform),
        Box::new(TraceSource::new(scenario.charging.clone())),
        Box::new(ScheduleGenerator::new(scenario.event_rates(platform))),
        scenario.initial_charge,
        SimConfig {
            periods: point.periods,
            slots_per_period: slots,
            substeps: 8,
            trace: true,
        },
    )?;
    plan.schedule(&mut sim);
    let sim = sim.with_telemetry(telemetry.clone());

    let safety = SafetyConfig::default_for(platform);
    let c_min = platform.battery.c_min.value();
    let guard = safety.guard_band.value();

    let (report, degradations) = match point.governor {
        "proposed" => {
            let alloc = cache.allocation(platform, scenario)?;
            let (shared, pareto) = cache.pareto(platform)?;
            let mut g =
                DpmController::with_table(shared, &alloc, scenario.charging.clone(), pareto)?
                    .without_trace()
                    .with_telemetry(telemetry.clone());
            (sim.run(&mut g)?, 0)
        }
        "proposed+safe" => {
            let alloc = cache.allocation(platform, scenario)?;
            let (shared, pareto) = cache.pareto(platform)?;
            let inner = DpmController::with_table(
                shared,
                &alloc,
                scenario.charging.clone(),
                Arc::clone(&pareto),
            )?
            .without_trace()
            .with_telemetry(telemetry.clone());
            let mut g = SafetyGovernor::with_table(inner, platform, safety, pareto)?
                .with_telemetry(telemetry.clone());
            let r = sim.run(&mut g)?;
            let d = g.degradation_count();
            (r, d)
        }
        "static" => {
            let mut g = StaticGovernor::full_power(platform)?;
            (sim.run(&mut g)?, 0)
        }
        _ => {
            let inner = StaticGovernor::full_power(platform)?;
            let (_, pareto) = cache.pareto(platform)?;
            let mut g = SafetyGovernor::with_table(inner, platform, safety, pareto)?
                .with_telemetry(telemetry.clone());
            let r = sim.run(&mut g)?;
            let d = g.degradation_count();
            (r, d)
        }
    };
    Ok(SurvivalReport::from_report(
        &report,
        c_min,
        guard,
        degradations,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_byte_identical_across_worker_counts() {
        let serial = run(2, 1, 1).unwrap();
        let parallel = run(2, 4, 1).unwrap();
        assert_eq!(serial.csv, parallel.csv);
        assert_eq!(serial.failures, parallel.failures);
    }

    #[test]
    fn matrix_covers_every_arm_and_seed() {
        let out = run(2, 2, 1).unwrap();
        let lines: Vec<&str> = out.csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * GOVERNOR_NAMES.len());
        assert!(lines[0].starts_with("scenario,seed,governor,survived"));
        for g in GOVERNOR_NAMES {
            assert_eq!(
                lines
                    .iter()
                    .filter(|l| l.contains(&format!(",{g},")))
                    .count(),
                2,
                "{g} rows missing:\n{}",
                out.csv
            );
        }
        assert_eq!(out.failures, 0, "{}", out.csv);
    }

    #[test]
    fn safety_arms_record_degradations_under_faults() {
        // Over a longer run the standard fault mix pushes the trajectory
        // into the guard band at least once for the static arm, so the
        // wrapped arms log transitions.
        let out = run(3, 2, 4).unwrap();
        let safe_rows: Vec<&str> = out.csv.lines().filter(|l| l.contains("+safe,")).collect();
        assert!(!safe_rows.is_empty());
        let total_degradations: u64 = safe_rows
            .iter()
            .filter_map(|l| l.split(',').nth(9))
            .filter_map(|d| d.parse::<u64>().ok())
            .sum();
        assert!(total_degradations > 0, "{}", out.csv);
    }
}
