//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro                  # everything
//! repro table1           # just Table 1
//! repro table2 table4    # any subset
//! repro --json out.json  # also dump machine-readable results
//! repro --jobs 4         # fan Table 1's governor×scenario matrix
//! DPM_JOBS=4 repro       # same, via the environment
//! repro --telemetry t.jsonl  # structured trace + wall-clock profile
//! ```
//!
//! The governor×scenario matrix behind Table 1 runs on the parallel
//! experiment runner; the printed numbers are identical for any worker
//! count. Worker-count priority: `--jobs N`, then `DPM_JOBS`, then the
//! machine's available parallelism.
//!
//! `--telemetry PATH` writes the deterministic JSONL trace to `PATH`, the
//! wall-clock span profile to `PATH.profile`, and a summary to stderr —
//! the trace is byte-identical across repeated runs and `--jobs`
//! settings; stdout is untouched. `--telemetry -` streams the trace to
//! stdout instead (profile suppressed, tables move to stderr), for
//! piping into `dpm-analyze audit -`.
//!
//! Exit codes: 0 on success, 1 when an experiment fails (infeasible
//! scenario, simulation error, unwritable output), 2 on a usage error
//! (unknown selector, missing `--json` path, bad `--jobs` value).

use dpm_bench::{experiments, format, runner, telemetry_out};
use dpm_core::platform::Platform;
use dpm_telemetry::Recorder;
use dpm_workloads::scenarios;
use serde::Serialize;
use std::collections::BTreeSet;
use std::io::Write;

/// The artifacts `repro` knows how to regenerate.
const SELECTORS: [&str; 7] = [
    "fig3", "fig4", "table1", "table2", "table3", "table4", "table5",
];

#[derive(Serialize)]
struct JsonDump {
    table1: Vec<experiments::Table1Row>,
    table2_iterations: usize,
    table4_iterations: usize,
    fig3: experiments::FigureSeries,
    fig4: experiments::FigureSeries,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut jobs_cli: Option<usize> = None;
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        if a == "--json" {
            json_path = iter.next();
            if json_path.is_none() {
                eprintln!("--json requires a path");
                std::process::exit(2);
            }
        } else if a == "--telemetry" {
            telemetry_path = iter.next();
            if telemetry_path.is_none() {
                eprintln!("--telemetry requires a path");
                std::process::exit(2);
            }
        } else if a == "--jobs" || a == "-j" {
            match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs_cli = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                }
            }
        } else {
            let key = a.to_lowercase();
            if !SELECTORS.contains(&key.as_str()) {
                eprintln!(
                    "unknown selector `{a}`; valid selectors are: {}",
                    SELECTORS.join(" ")
                );
                std::process::exit(2);
            }
            wanted.insert(key);
        }
    }

    let jobs = runner::resolve_jobs(jobs_cli);
    let telemetry = match telemetry_path {
        Some(_) => Recorder::enabled("repro"),
        None => Recorder::disabled(),
    };
    // With `--telemetry -` the trace owns stdout; the tables move to
    // stderr so the stream stays a clean JSONL document for piping.
    let trace_on_stdout = telemetry_path
        .as_deref()
        .is_some_and(telemetry_out::to_stdout);
    let mut out: Box<dyn Write> = if trace_on_stdout {
        Box::new(std::io::stderr())
    } else {
        Box::new(std::io::stdout())
    };
    if let Err(e) = run(&wanted, json_path, jobs, &telemetry, &mut out) {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
    if let Some(path) = telemetry_path {
        if let Err(e) = telemetry_out::write_outputs(&telemetry, &path) {
            eprintln!("repro: cannot write telemetry to {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn run(
    wanted: &BTreeSet<String>,
    json_path: Option<String>,
    jobs: usize,
    telemetry: &Recorder,
    out: &mut dyn Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let all = wanted.is_empty();
    let want = |k: &str| all || wanted.contains(k);

    let platform = Platform::pama();
    let s1 = scenarios::scenario_one();
    let s2 = scenarios::scenario_two();

    if want("fig3") {
        let f = experiments::figure(&s1);
        writeln!(
            out,
            "{}",
            format::figure(&f, "Figure 3  Charging and use schedule for scenario I")
        )?;
    }
    if want("fig4") {
        let f = experiments::figure(&s2);
        writeln!(
            out,
            "{}",
            format::figure(&f, "Figure 4  Charging and use schedule for scenario II")
        )?;
    }
    if want("table2") {
        let rec = telemetry.sibling();
        let iters = experiments::table2_4_with(&platform, &s1, &rec)?;
        telemetry.absorb("table2", &rec);
        writeln!(
            out,
            "{}",
            format::table2_4(
                &iters,
                "Table 2  Initial power allocation computation (scenario I)"
            )
        )?;
    }
    if want("table4") {
        let rec = telemetry.sibling();
        let iters = experiments::table2_4_with(&platform, &s2, &rec)?;
        telemetry.absorb("table4", &rec);
        writeln!(
            out,
            "{}",
            format::table2_4(
                &iters,
                "Table 4  Initial power allocation computation (scenario II)"
            )
        )?;
    }
    if want("table3") {
        let rec = telemetry.sibling();
        let (trace, report) =
            experiments::table3_5_with(&platform, &s1, experiments::DEFAULT_PERIODS, &rec)?;
        telemetry.absorb("table3", &rec);
        writeln!(
            out,
            "{}",
            format::table3_5(
                &trace,
                "Table 3  Dynamic update of the power allocation (scenario I)"
            )
        )?;
        writeln!(out, "  {}", report.summary())?;
        writeln!(out)?;
    }
    if want("table5") {
        let rec = telemetry.sibling();
        let (trace, report) =
            experiments::table3_5_with(&platform, &s2, experiments::DEFAULT_PERIODS, &rec)?;
        telemetry.absorb("table5", &rec);
        writeln!(
            out,
            "{}",
            format::table3_5(
                &trace,
                "Table 5  Dynamic update of the power allocation (scenario II)"
            )
        )?;
        writeln!(out, "  {}", report.summary())?;
        writeln!(out)?;
    }
    if want("table1") {
        let rows = experiments::table1_jobs_with(
            &platform,
            &[s1.clone(), s2.clone()],
            experiments::DEFAULT_PERIODS,
            jobs,
            telemetry,
        )?;
        writeln!(
            out,
            "{}",
            format::table1(&rows, &["Scenario 1", "Scenario 2"])
        )?;
        if let (Some(proposed), Some(statik)) = (
            rows.iter().find(|r| r.governor == "proposed"),
            rows.iter().find(|r| r.governor == "static"),
        ) {
            for i in 0..2 {
                let ratio = statik.wasted[i] / proposed.wasted[i].max(1e-9);
                writeln!(
                    out,
                    "  scenario {}: static wastes {ratio:.1}x the energy of proposed",
                    i + 1
                )?;
            }
        }
        writeln!(out)?;
    }

    if let Some(path) = json_path {
        let rows = experiments::table1_jobs(
            &platform,
            &[s1.clone(), s2.clone()],
            experiments::DEFAULT_PERIODS,
            jobs,
        )?;
        let dump = JsonDump {
            table1: rows,
            table2_iterations: experiments::table2_4(&platform, &s1)?.len(),
            table4_iterations: experiments::table2_4(&platform, &s2)?.len(),
            fig3: experiments::figure(&s1),
            fig4: experiments::figure(&s2),
        };
        let body = serde_json::to_string_pretty(&dump)?;
        std::fs::write(&path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "wrote {path}")?;
    }
    Ok(())
}
