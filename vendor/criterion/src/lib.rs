//! Offline stand-in for `criterion`.
//!
//! Exposes the configuration/bench surface this workspace's benches use
//! (`Criterion`, groups, `BenchmarkId`, `Throughput`, the `criterion_group!`
//! and `criterion_main!` macros, `black_box`) and implements it as a tiny
//! timer: each bench closure runs a handful of iterations and prints a
//! mean wall time. Good enough to keep benches compiling and smoke-running
//! without the real statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and top-level bench registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API parity; the stand-in has no warm-up phase.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API parity; iteration count is `sample_size`.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Configure from command-line arguments (no-op here).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one named bench.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Open a named group of benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Print the final summary (no-op).
    pub fn final_summary(&mut self) {}
}

/// A named collection of related benches.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the per-iteration throughput (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one bench in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Run one bench with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier of a bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Just a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Anything usable as a bench identifier.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Per-iteration throughput declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handle passed to bench closures.
pub struct Bencher {
    iters: usize,
    total: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size,
        total: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.total.as_secs_f64() / b.iters.max(1) as f64;
    println!("bench {name}: {:.3} µs/iter (n={})", mean * 1e6, b.iters);
}

/// Group benches under a config, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
