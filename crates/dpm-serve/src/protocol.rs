//! The NDJSON wire protocol: one JSON document per line, request in,
//! response out, in order. Enums use serde's external tagging, so an
//! open request reads
//! `{"Open":{"session":"s0","spec":{...}}}` and a shutdown is the bare
//! string `"Shutdown"`.
//!
//! The telemetry contract mirrors how a live emitter feeds the
//! incremental auditor (see `dpm_trace::AuditState`):
//!
//! - [`Response::Opened`] carries the session's config **gauge** lines
//!   (battery window, safety tunables) — stream these first;
//! - [`Response::Advanced`] carries the fresh **event** tail for the
//!   slots just stepped — the live stream;
//! - [`Response::Closed`] carries the complete **batch document**
//!   (meta line first), byte-identical to what `Recorder::to_jsonl`
//!   writes, so it pipes straight into `dpm-analyze audit -`.

use dpm_sim::prelude::Disturbance;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// Everything needed to open a session: which workload, which governor
/// arm, and the per-board individuality knobs that `dpm-workloads`'
/// fleet sampler produces (charge jitter, rate phase, fault schedule).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Workload scenario name (`"scenario-1"` or `"scenario-2"`).
    pub scenario: String,
    /// Governor arm: `"proposed"`, `"proposed+safe"`, `"static"`, or
    /// `"static+safe"`.
    pub governor: String,
    /// Charging periods the session may run (the horizon).
    pub periods: usize,
    /// Initial battery charge (J); `null` uses the scenario default.
    pub initial_charge_j: Option<f64>,
    /// Event-rate phase offset in whole slots (0 = the base schedule).
    pub phase_slots: usize,
    /// Time-sorted fault schedule: `(sim seconds, disturbance)`.
    pub faults: Vec<(f64, Disturbance)>,
}

impl SessionSpec {
    /// A spec with no individuality: scenario defaults, no faults.
    pub fn plain(scenario: &str, governor: &str, periods: usize) -> Self {
        Self {
            scenario: scenario.to_string(),
            governor: governor.to_string(),
            periods,
            initial_charge_j: None,
            phase_slots: 0,
            faults: Vec::new(),
        }
    }
}

/// What a [`Request::Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// The operating point most recently commanded and the live backlog.
    Plan,
    /// Battery level, window, and the per-slot forecast over one
    /// charging period.
    Battery,
    /// Safety-wrapper degradation state (zeros for unwrapped arms).
    Degradation,
}

/// One client request. `session` names the target session; names are
/// chosen by the client and must be unique among open sessions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Open a session and start its run at slot 0.
    Open {
        /// Session name (client-chosen, unique while open).
        session: String,
        /// Workload, governor arm, and individuality knobs.
        spec: SessionSpec,
    },
    /// Step the session forward up to `slots` slots (stops early at the
    /// horizon).
    Advance {
        /// Session name.
        session: String,
        /// Maximum slots to step.
        slots: u64,
    },
    /// Replace the session's event-rate schedule from the next slot on
    /// (an online telemetry update from the field).
    SetRates {
        /// Session name.
        session: String,
        /// Per-slot event rates (events/s), cycled over the horizon.
        rates: Vec<f64>,
    },
    /// Schedule a disturbance at an absolute sim time.
    Disturb {
        /// Session name.
        session: String,
        /// Absolute sim time (s) the disturbance fires.
        at_s: f64,
        /// The disturbance to inject.
        disturbance: Disturbance,
    },
    /// Query live state without advancing the clock.
    Query {
        /// Session name.
        session: String,
        /// Which view of the session to return.
        what: QueryKind,
    },
    /// Feed one raw schema-v1 JSONL line to the session's online auditor
    /// **only** — the session's own recorder is untouched. This is the
    /// fault-injection port for exercising the audit path; an illegal
    /// line gets the session killed when auditing is on.
    InjectLine {
        /// Session name.
        session: String,
        /// One schema-v1 JSONL trace line.
        line: String,
    },
    /// Close the session: finish the run, audit the complete stream,
    /// and return the batch trace document.
    Close {
        /// Session name.
        session: String,
    },
    /// Snapshot the server-wide metrics plane as Prometheus-style text
    /// exposition (a scrape). Not tied to any session; sessions keep
    /// running. Encodes as the bare string `"Metrics"`.
    Metrics,
    /// Stop accepting connections and exit once in-flight requests
    /// drain.
    Shutdown,
}

/// One server response; always exactly one line per request, in order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// The session is open and its run is at slot 0.
    Opened {
        /// Session name.
        session: String,
        /// Horizon in slots.
        total_slots: u64,
        /// Slot width (s).
        tau_s: f64,
        /// Config gauge lines (schema-v1 JSONL) — the head of the
        /// session's live stream.
        telemetry: Vec<String>,
    },
    /// The session stepped forward.
    Advanced {
        /// Session name.
        session: String,
        /// Next slot to run (== slots completed so far).
        slot: u64,
        /// Whether the horizon is exhausted.
        done: bool,
        /// Fresh event lines (schema-v1 JSONL) for the stepped slots.
        telemetry: Vec<String>,
        /// Violations the online auditor flagged during this advance
        /// (empty when auditing is off or the stream is clean).
        violations: Vec<String>,
    },
    /// The rate schedule was replaced.
    RatesSet {
        /// Session name.
        session: String,
    },
    /// The disturbance was queued.
    Disturbed {
        /// Session name.
        session: String,
    },
    /// Answer to [`QueryKind::Plan`].
    Plan {
        /// Session name.
        session: String,
        /// Next slot to run.
        slot: u64,
        /// Workers commanded in the last completed slot.
        workers: u64,
        /// Frequency commanded in the last completed slot (MHz).
        freq_mhz: f64,
        /// Jobs waiting at the end of the last completed slot.
        backlog: u64,
    },
    /// Answer to [`QueryKind::Battery`].
    Battery {
        /// Session name.
        session: String,
        /// Battery level now (J).
        level_j: f64,
        /// Lower capacity bound C_min (J).
        c_min_j: f64,
        /// Upper capacity bound C_max (J).
        c_max_j: f64,
        /// Projected per-slot battery levels over one charging period,
        /// assuming the nominal source and the last slot's draw.
        forecast_j: Vec<f64>,
    },
    /// Answer to [`QueryKind::Degradation`].
    Degradation {
        /// Session name.
        session: String,
        /// Degradation transitions recorded by the safety wrapper.
        degradations: u64,
        /// Current shed level (0 = nominal).
        shed_level: u64,
        /// Whether the static fallback is engaged.
        fallback_engaged: bool,
    },
    /// The injected line was fed to the auditor (and survived).
    Injected {
        /// Session name.
        session: String,
    },
    /// The session closed cleanly.
    Closed {
        /// Session name.
        session: String,
        /// Whether the canonical end-of-stream audit found no
        /// violations (vacuously `true` when auditing is off).
        audit_ok: bool,
        /// Rendered violations from the canonical audit.
        violations: Vec<String>,
        /// Audit checks performed (0 when auditing is off).
        checks: u64,
        /// Jobs the session completed.
        jobs_done: u64,
        /// Energy demanded but unavailable (J).
        undersupplied_j: f64,
        /// The complete batch trace document, one schema-v1 JSONL line
        /// per entry, meta first.
        trace: Vec<String>,
    },
    /// The online auditor flagged the stream illegal; the session is
    /// gone and its run discarded.
    Killed {
        /// Session name.
        session: String,
        /// Rendered violations, first offender first.
        violations: Vec<String>,
    },
    /// Answer to [`Request::Metrics`]: the metrics snapshot.
    Metrics {
        /// Prometheus-style text exposition (`# TYPE` lines plus
        /// `name{labels} value` samples, newline-terminated).
        text: String,
    },
    /// The request failed; the session (if any) is unchanged.
    Error {
        /// Rendered [`ServeError`].
        message: String,
    },
    /// Shutdown acknowledged; the server exits once connections drain.
    ShuttingDown,
}

impl Response {
    /// Wrap a failure as a wire response.
    pub fn error(e: &ServeError) -> Self {
        Self::Error {
            message: e.to_string(),
        }
    }
}

/// Parse one request line.
///
/// # Errors
/// [`ServeError::BadRequest`] with the parser's message on malformed
/// input.
pub fn decode_request(line: &str) -> Result<Request, ServeError> {
    serde_json::from_str(line).map_err(|e| ServeError::BadRequest(e.to_string()))
}

/// Serialize a response to one NDJSON line (no trailing newline).
/// Serialization of these value types cannot fail; on the impossible
/// path this degrades to a rendered error response.
pub fn encode_response(resp: &Response) -> String {
    serde_json::to_string(resp)
        .unwrap_or_else(|e| format!("{{\"Error\":{{\"message\":\"encode failed: {e}\"}}}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::seconds;

    #[test]
    fn requests_round_trip_through_ndjson() {
        let reqs = vec![
            Request::Open {
                session: "s0".into(),
                spec: SessionSpec {
                    scenario: "scenario-1".into(),
                    governor: "proposed+safe".into(),
                    periods: 2,
                    initial_charge_j: Some(7.5),
                    phase_slots: 3,
                    faults: vec![(
                        10.0,
                        Disturbance::SupplyScale {
                            factor: 0.5,
                            duration: seconds(30.0),
                        },
                    )],
                },
            },
            Request::Advance {
                session: "s0".into(),
                slots: 12,
            },
            Request::SetRates {
                session: "s0".into(),
                rates: vec![0.1, 0.2],
            },
            Request::Query {
                session: "s0".into(),
                what: QueryKind::Battery,
            },
            Request::Close {
                session: "s0".into(),
            },
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req).expect("encode");
            let back = decode_request(&line).expect("decode");
            let again = serde_json::to_string(&back).expect("re-encode");
            assert_eq!(line, again, "round trip changed {line}");
        }
    }

    #[test]
    fn metrics_is_a_bare_string_on_the_wire() {
        let line = serde_json::to_string(&Request::Metrics).expect("encode");
        assert_eq!(line, "\"Metrics\"");
        assert!(matches!(
            decode_request("\"Metrics\"").expect("decode"),
            Request::Metrics
        ));
        let resp = encode_response(&Response::Metrics {
            text: "# TYPE dpm_serve_requests_total counter\n".into(),
        });
        assert!(resp.contains("Metrics"));
        assert!(!resp.contains('\n'), "exposition newlines must be escaped");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let err = decode_request("{\"Advnce\":{}}").expect_err("must fail");
        assert!(matches!(err, ServeError::BadRequest(_)));
        let err = decode_request("not json").expect_err("must fail");
        assert!(matches!(err, ServeError::BadRequest(_)));
    }

    #[test]
    fn responses_encode_to_single_lines() {
        let resp = Response::Advanced {
            session: "s0".into(),
            slot: 3,
            done: false,
            telemetry: vec!["{\"Event\":{}}".into()],
            violations: vec![],
        };
        let line = encode_response(&resp);
        assert!(!line.contains('\n'));
        assert!(line.contains("Advanced"));
    }
}
