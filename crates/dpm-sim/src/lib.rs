//! # dpm-sim
//!
//! A from-scratch simulator of the paper's evaluation platform: the PAMA
//! board (eight M32R/D PIMs behind two FPGAs on a unidirectional ring), a
//! rechargeable battery with a capacity window, periodic/solar charging
//! sources, RF-event arrival processes, a power-measurement board, and the
//! slot-stepped feedback loop that lets any [`dpm_core::governor::Governor`]
//! drive it all.
//!
//! ```
//! use dpm_core::prelude::*;
//! use dpm_sim::prelude::*;
//!
//! fn main() -> Result<(), SimError> {
//!     let platform = Platform::pama();
//!     let charging = PowerSeries::new(platform.tau,
//!         vec![2.36; 6].into_iter().chain(vec![0.0; 6]).collect())?;
//!     let rates = PowerSeries::constant(platform.tau, 12, 0.2)?;
//!
//!     struct AlwaysOn;
//!     impl Governor for AlwaysOn {
//!         fn name(&self) -> &str { "always-on" }
//!         fn decide(&mut self, _o: &SlotObservation) -> Result<OperatingPoint, DpmError> {
//!             Ok(OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3)))
//!         }
//!     }
//!
//!     let sim = Simulation::new(
//!         platform,
//!         Box::new(TraceSource::new(charging)),
//!         Box::new(ScheduleGenerator::new(rates)),
//!         joules(8.0),
//!         SimConfig::default(),
//!     )?;
//!     let report = sim.run(&mut AlwaysOn)?;
//!     assert!(report.jobs_done > 0);
//!     Ok(())
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > 0.0)`-style checks are deliberate: unlike `x <= 0.0` they also
// reject NaN, which is exactly what the validation layer is for.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod battery;
pub mod board;
pub mod commands;
pub mod engine;
pub mod error;
pub mod events;
pub mod fleet;
pub mod meter;
pub mod network;
pub mod processor;
pub mod sim;
pub mod source;
pub mod stats;
pub mod topo;

/// One-stop imports.
pub mod prelude {
    pub use crate::battery::{Battery, BatteryConfig, PeukertModel};
    pub use crate::board::PamaBoard;
    pub use crate::commands::{Command, CommandBus, InFlight};
    pub use crate::engine::{Clock, EventQueue};
    pub use crate::error::SimError;
    pub use crate::events::{BurstGenerator, EventGenerator, PoissonGenerator, ScheduleGenerator};
    pub use crate::fleet::{
        BoardSpec, FleetConfig, FleetReport, FleetState, FleetTrace, ShedGuard,
    };
    pub use crate::meter::{ChargeSensor, PowerMeter};
    pub use crate::network::{RingConfig, RingNetwork};
    pub use crate::processor::{Mode, Processor, TransitionLatency};
    pub use crate::sim::{ActiveRun, Disturbance, SimConfig, Simulation};
    pub use crate::source::{ChargingSource, NoisySource, SolarOrbitSource, TraceSource};
    pub use crate::stats::{BrokerStats, SimReport, SlotRecord, SurvivalReport};
    pub use crate::topo::{pama_topology, TopologyMode, TopologyRuntime};
    pub use dpm_telemetry::Recorder;
}
