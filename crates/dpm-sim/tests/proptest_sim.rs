//! Property-based tests for the simulator substrate: battery accounting,
//! source determinism, and event-generator statistics.

use dpm_core::platform::BatteryLimits;
use dpm_core::series::PowerSeries;
use dpm_core::units::{joules, seconds, Joules};
use dpm_sim::prelude::*;
use proptest::prelude::*;

fn limits() -> BatteryLimits {
    BatteryLimits::new(joules(0.5), joules(16.0))
}

proptest! {
    /// Battery conservation: offered = stored delta + wasted + (losses),
    /// and delivered = demanded − undersupplied, for any op sequence.
    #[test]
    fn battery_accounting_balances(
        ops in prop::collection::vec((any::<bool>(), 0.0f64..6.0), 1..64),
        initial in 0.5f64..16.0,
    ) {
        let mut b = Battery::new(BatteryConfig::ideal(limits()), joules(initial));
        let start = b.level().value();
        let mut demanded = 0.0;
        for (is_charge, amount) in ops {
            if is_charge {
                b.charge(joules(amount));
            } else {
                demanded += amount;
                b.draw(joules(amount));
            }
        }
        let stored_delta = b.level().value() - start;
        // offered = stored gain + wasted + delivered-from-offer… with an
        // ideal battery: offered − wasted = stored_delta + delivered.
        let lhs = b.offered().value() - b.wasted().value();
        let rhs = stored_delta + b.delivered().value();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        // Undersupplied is exactly the unmet demand.
        prop_assert!(
            (b.delivered().value() + b.undersupplied().value() - demanded).abs() < 1e-9
        );
        // Level always inside [0, C_max].
        prop_assert!(b.level() >= Joules::ZERO && b.level() <= joules(16.0));
    }

    /// Battery level never leaves [C_min-floor, C_max] under draw, and
    /// never exceeds C_max under charge.
    #[test]
    fn battery_window_is_invariant(
        charges in prop::collection::vec(0.0f64..10.0, 1..32),
    ) {
        let mut b = Battery::new(BatteryConfig::ideal(limits()), joules(8.0));
        for c in charges {
            b.charge(joules(c));
            prop_assert!(b.level() <= joules(16.0));
            b.draw(joules(c * 0.7));
            prop_assert!(b.level() >= joules(0.5) - joules(1e-12));
        }
    }

    /// Trace sources integrate exactly: mean power over any window equals
    /// the series integral over that window.
    #[test]
    fn trace_source_mean_power_is_exact(
        values in prop::collection::vec(0.0f64..4.0, 12..=12),
        a in 0.0f64..57.6,
        w in 0.1f64..10.0,
    ) {
        let series = PowerSeries::new(seconds(4.8), values);
        let src = TraceSource::new(series.clone());
        let mean = src.mean_power(seconds(a), seconds(w)).value();
        let expect = series
            .integral_wrapping(seconds(a % 57.6), seconds((a % 57.6) + w))
            .value() / w;
        prop_assert!((mean - expect).abs() < 1e-9, "{mean} vs {expect}");
    }

    /// Schedule generators hit the expected count over whole periods
    /// within one event (fractional carry).
    #[test]
    fn schedule_generator_counts_exact(
        rates in prop::collection::vec(0.0f64..1.0, 12..=12),
        periods in 1usize..6,
    ) {
        let series = PowerSeries::new(seconds(4.8), rates);
        let expect = series.integral().value() * periods as f64;
        let mut g = ScheduleGenerator::new(series);
        let mut total = 0usize;
        for i in 0..(12 * periods) {
            total += g.arrivals(seconds(i as f64 * 4.8), seconds(4.8));
        }
        prop_assert!((total as f64 - expect).abs() <= 1.0, "{total} vs {expect}");
    }

    /// Poisson generators are seed-deterministic and mean-consistent for
    /// moderate rates.
    #[test]
    fn poisson_deterministic(seed in any::<u64>(), rate in 0.0f64..0.8) {
        let series = PowerSeries::constant(seconds(4.8), 12, rate);
        let mut a = PoissonGenerator::new(series.clone(), seed);
        let mut b = PoissonGenerator::new(series, seed);
        for i in 0..12 {
            let t = seconds(i as f64 * 4.8);
            prop_assert_eq!(a.arrivals(t, seconds(4.8)), b.arrivals(t, seconds(4.8)));
        }
    }

    /// The noisy source never goes negative and stays within its band.
    #[test]
    fn noisy_source_bounded(seed in any::<u64>(), amp in 0.0f64..0.9) {
        let series = PowerSeries::constant(seconds(4.8), 12, 2.0);
        let src = NoisySource::new(TraceSource::new(series), amp, seconds(4.8), seed);
        for i in 0..24 {
            let p = src.power(seconds(i as f64 * 2.4)).value();
            prop_assert!(p >= 0.0);
            prop_assert!(p <= 2.0 * (1.0 + amp) + 1e-9);
            prop_assert!(p >= 2.0 * (1.0 - amp) - 1e-9);
        }
    }

    /// Ring hop counts: src→dst→src always totals the full ring (or zero).
    #[test]
    fn ring_hops_complement(src in 0usize..8, dst in 0usize..8) {
        let ring = RingNetwork::new(RingConfig::pama());
        let there = ring.hops(src, dst);
        let back = ring.hops(dst, src);
        if src == dst {
            prop_assert_eq!(there + back, 0);
        } else {
            prop_assert_eq!(there + back, 8);
        }
    }
}
