//! Fixed-bucket histograms: deterministic, mergeable, quantile-queryable.
//!
//! Bucket bounds are fixed at construction (never rebalanced), so two
//! histograms fed the same observations in any order hold identical state
//! — the property the trace's byte-comparability rests on. Values are
//! counted into the first bucket whose upper bound is `>= value`, with
//! one implicit overflow bucket past the last bound.

/// Default bucket upper bounds, spanning the magnitudes the DPM stack
/// observes (iteration counts, horizon slots, joules per slot, sweep
/// aggregates). Callers with tighter ranges pass their own bounds via
/// [`crate::Recorder::observe_with`].
pub const DEFAULT_BOUNDS: [f64; 12] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
];

/// A fixed-bucket histogram with scalar summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last one is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given bucket upper bounds. Non-finite bounds
    /// are dropped and the rest sorted and deduplicated — telemetry
    /// sanitizes rather than fails, so a malformed bound list degrades to
    /// fewer buckets instead of an error on a hot path.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let buckets = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram over [`DEFAULT_BOUNDS`].
    pub fn with_default_bounds() -> Self {
        Self::new(&DEFAULT_BOUNDS)
    }

    /// Record one observation. Non-finite values are ignored (a NaN would
    /// poison `sum` and break byte-comparability downstream).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, `0.0` when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, `0.0` when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean observation, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper-bound estimate of the `q`-quantile (`q` clamped to `[0, 1]`):
    /// the bound of the first bucket at which the cumulative count reaches
    /// `q · count`. Observations past the last bound report the observed
    /// maximum. `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return match self.bounds.get(i) {
                    Some(&b) => b.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// Fold another histogram into this one. Matching bounds merge
    /// bucket-by-bucket; mismatched bounds merge the scalar statistics
    /// exactly but pool the other side's observations into the overflow
    /// bucket (a lossy but deterministic degradation — absorb scopes are
    /// expected to keep one bound set per metric name).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else if let Some(last) = self.counts.last_mut() {
            *last += other.count;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_the_right_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn ignores_non_finite_observations() {
        let mut h = Histogram::with_default_bounds();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 3.5, 3.9, 5.0, 6.0, 7.0, 7.5] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 4.0);
        // The top bucket's bound (8.0) caps at the observed max.
        assert_eq!(h.quantile(1.0), 7.5);
        // A value past the last bound caps at the observed max.
        h.record(1000.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let mut h = Histogram::new(&[100.0]);
        h.record(3.0);
        assert_eq!(h.quantile(0.5), 3.0);
    }

    #[test]
    fn merge_with_matching_bounds_is_exact() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn merge_with_mismatched_bounds_pools_into_overflow() {
        let mut a = Histogram::new(&[1.0]);
        let mut b = Histogram::new(&[2.0]);
        b.record(0.5);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[0, 2]);
        assert_eq!(a.count(), 2);
        assert!((a.sum() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn values_exactly_on_bucket_boundaries_land_in_the_bounded_bucket() {
        // The rule is `value <= bound`: a value equal to an upper bound
        // belongs to that bucket, not the next one.
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [1.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 0], "no boundary value overflowed");
        // Nudged just past a bound, the value moves one bucket up.
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.record(1.0 + f64::EPSILON * 2.0);
        assert_eq!(h.counts(), &[0, 1, 0, 0]);
        // Exactly on the *last* bound still avoids the overflow bucket;
        // the tiniest step past it does not.
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.record(4.0);
        h.record(4.0 + f64::EPSILON * 4.0);
        assert_eq!(h.counts(), &[0, 0, 1, 1]);
    }

    #[test]
    fn non_finite_inputs_never_panic_or_poison_state() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(1.5);
        h.record(f64::NAN);
        // Only the finite observation registered; the scalar summaries
        // were not poisoned by the NaN/±inf neighbours.
        assert_eq!(h.count(), 1);
        assert_eq!(h.counts(), &[0, 1, 0]);
        assert_eq!(h.sum(), 1.5);
        assert_eq!(h.min(), 1.5);
        assert_eq!(h.max(), 1.5);
        assert!(h.mean().is_finite());
        assert!(h.quantile(0.5).is_finite());
    }

    #[test]
    fn empty_histogram_quantiles_and_summaries_are_zero() {
        let h = Histogram::new(&[1.0, 2.0]);
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0.0, "q = {q}");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        // An empty merge source leaves the target untouched.
        let mut target = Histogram::new(&[1.0, 2.0]);
        target.merge(&h);
        assert_eq!(target.count(), 0);
    }

    #[test]
    fn quantile_with_nan_q_does_not_panic() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(0.5);
        // NaN clamps to the low end of [0, 1]; the call must not panic
        // and must return a finite bound.
        assert!(h.quantile(f64::NAN).is_finite());
    }

    #[test]
    fn malformed_bounds_are_sanitized() {
        let h = Histogram::new(&[2.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(h.bounds(), &[1.0, 2.0]);
        assert_eq!(h.counts().len(), 3);
    }
}
