//! The continuous-parameter analysis of §4.2 (Eqs. 12–18).
//!
//! With a continuous parameter space and no switching overhead, the paper
//! derives which knob — frequency or processor count — buys more
//! performance per watt:
//!
//! * **Below the pivot** `f < g(v_min)` (voltage pinned at `v_min`, power
//!   linear in `f`): the marginal-gain ratio is `n·Ts/(Tt−Ts) + 1 > 1`
//!   (Eq. 14), so **raising frequency always wins**.
//! * **Above the pivot** `f ≥ g(v_min)` (voltage tracks frequency, power
//!   cubic in `f`): the ratio is `n·Ts/(3(Tt−Ts)) + 1/3` (Eq. 17), so
//!   frequency wins only once `n·Ts/(Tt−Ts) > 2`; below that threshold
//!   **adding processors wins**.
//!
//! Stacking the regimes yields the four-case policy of Eq. 18: grow `f` on
//! one processor up to the pivot, then add processors at the pivot
//! frequency until `n = 2(Tt/Ts − 1)`, then grow frequency/voltage to the
//! maximum, then add processors again.

use crate::model::AmdahlWorkload;
use crate::platform::Platform;
use crate::units::{hertz, Hertz, Watts};
use serde::{Deserialize, Serialize};

/// Which knob the marginal analysis prefers to grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthPreference {
    /// Raise the clock (and voltage if required).
    Frequency,
    /// Activate another processor.
    Processors,
    /// The two are exactly tied.
    Indifferent,
}

/// The ratio of Eq. 14 / Eq. 17:
/// `(∂Perf/∂Power at constant n) / (∂Perf/∂Power at constant f)`.
///
/// `> 1` means raising frequency yields more performance per watt.
pub fn marginal_gain_ratio(workload: &AmdahlWorkload, n: usize, above_pivot: bool) -> f64 {
    let r = workload.decision_ratio(n); // n·Ts/(Tt−Ts)
    if above_pivot {
        r / 3.0 + 1.0 / 3.0 // Eq. 17
    } else {
        r + 1.0 // Eq. 14
    }
}

/// Classify the Eq. 14/17 comparison.
pub fn growth_preference(
    workload: &AmdahlWorkload,
    n: usize,
    above_pivot: bool,
) -> GrowthPreference {
    let ratio = marginal_gain_ratio(workload, n, above_pivot);
    if (ratio - 1.0).abs() < 1e-12 {
        GrowthPreference::Indifferent
    } else if ratio > 1.0 {
        GrowthPreference::Frequency
    } else {
        GrowthPreference::Processors
    }
}

/// A continuous (possibly fractional-`n`) operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContinuousPoint {
    /// Processor count (fractional: the analysis treats `n` as continuous;
    /// Algorithm 2 discretizes).
    pub n: f64,
    /// Clock frequency.
    pub f: Hertz,
}

/// Eq. 18: the continuous operating point for an allocated power, given a
/// DVFS-capable platform.
///
/// The four cases, with `P₀ = c2·g(v_min)·v_min²` (one processor at the
/// pivot) and `n* = 2(Tt/Ts − 1)` (the Eq. 17 breakpoint):
///
/// 1. `P < P₀` — one processor below the pivot: `f = P/(c2·v_min²)`.
/// 2. `P₀ ≤ P < n*·P₀` — processors at the pivot: `n = P/P₀`, `f = g(v_min)`.
/// 3. `n*·P₀ ≤ P < n*·P_max` — hold `n = n*`, raise frequency/voltage so
///    that `c2·n*·f·g⁻¹(f)² = P` (solved by bisection; `g` monotone makes
///    the power strictly increasing in `f`).
/// 4. `P ≥ n*·P_max` — max frequency, grow processors: `n = P/P_max`
///    (`P_max = c2·g(v_max)·v_max²` per chip).
///
/// For a fully parallel workload (`Ts = 0`, `n* = ∞`) case 3/4 never
/// engage; for a fully serial one the function pins `n = 1`.
/// `n` is capped at the platform's worker count.
pub fn continuous_operating_point(platform: &Platform, power: Watts) -> ContinuousPoint {
    let c2 = platform.power.c2;
    let vmin = platform.v_min;
    let vmax = platform.v_max;
    let g_vmin = platform.vf.pivot_frequency(vmin);
    let g_vmax = platform.vf.max_frequency(vmax);
    let n_max = platform.workers() as f64;

    let chip_power = |f: Hertz| -> f64 {
        let v = platform.vf.operating_voltage(f, vmin, vmax).unwrap_or(vmax);
        c2 * f.value() * v.value() * v.value()
    };
    let p = power.value().max(0.0);
    let p_pivot = chip_power(g_vmin); // P₀
    let p_max = chip_power(g_vmax);

    // Fully serial workload: processors beyond the first add nothing, so
    // the whole budget goes to frequency (the paper drops this case after
    // Eq. 17 for the same reason).
    if platform.workload.parallel_fraction() <= 1e-12 {
        let f = if p <= p_pivot {
            hertz((p / (c2 * vmin.value() * vmin.value())).max(0.0)).min(g_vmin)
        } else {
            let target = p.min(p_max);
            bisect_frequency(g_vmin, g_vmax, target, &chip_power)
        };
        return ContinuousPoint { n: 1.0, f };
    }

    let n_star = match platform.workload.breakpoint_processors() {
        None => f64::INFINITY, // fully parallel: keep adding processors
        Some(bp) if bp <= 0.0 => 1.0,
        Some(bp) => bp,
    };
    let n_star_capped = n_star.min(n_max).max(1.0);

    // Case 1: below one pivot-frequency processor.
    if p < p_pivot {
        let f = hertz((p / (c2 * vmin.value() * vmin.value())).max(0.0)).min(g_vmin);
        return ContinuousPoint { n: 1.0, f };
    }
    // Case 2: processors at the pivot.
    if p < n_star_capped * p_pivot {
        return ContinuousPoint {
            n: (p / p_pivot).min(n_max),
            f: g_vmin,
        };
    }
    // Case 3: n pinned at n*, frequency grows with voltage.
    if p < n_star_capped * p_max {
        let target_chip = p / n_star_capped;
        let f = bisect_frequency(g_vmin, g_vmax, target_chip, &chip_power);
        return ContinuousPoint {
            n: n_star_capped,
            f,
        };
    }
    // Case 4: everything at max frequency; processors absorb the budget.
    ContinuousPoint {
        n: (p / p_max).min(n_max),
        f: g_vmax,
    }
}

/// Solve `chip_power(f) = target` for `f ∈ [lo, hi]` by bisection; the map
/// is strictly increasing because both `f` and `g⁻¹(f)` are.
fn bisect_frequency(
    lo: Hertz,
    hi: Hertz,
    target: f64,
    chip_power: &impl Fn(Hertz) -> f64,
) -> Hertz {
    let (mut a, mut b) = (lo.value(), hi.value());
    if chip_power(hertz(b)) <= target {
        return hertz(b);
    }
    if chip_power(hertz(a)) >= target {
        return hertz(a);
    }
    for _ in 0..64 {
        let m = 0.5 * (a + b);
        if chip_power(hertz(m)) < target {
            a = m;
        } else {
            b = m;
        }
    }
    hertz(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{seconds, watts};

    fn dvfs_platform() -> Platform {
        let mut p = Platform::pama_dvfs();
        // Workload with Ts/Tt = 0.2 ⇒ n* = 2·(5−1) = 8 > workers (7).
        p.workload =
            crate::model::AmdahlWorkload::new(seconds(4.8), seconds(0.96), Hertz::from_mhz(20.0))
                .unwrap();
        p
    }

    #[test]
    fn eq14_ratio_always_prefers_frequency_below_pivot() {
        let w = AmdahlWorkload::new(seconds(4.8), seconds(0.48), Hertz::from_mhz(20.0)).unwrap();
        for n in 1..=16 {
            assert!(marginal_gain_ratio(&w, n, false) > 1.0);
            assert_eq!(growth_preference(&w, n, false), GrowthPreference::Frequency);
        }
    }

    #[test]
    fn eq17_threshold_flips_preference() {
        // Ts/Tt = 0.1 ⇒ ratio crosses 1 at n·Ts/(Tt−Ts) = 2 ⇔ n = 18.
        let w = AmdahlWorkload::new(seconds(4.8), seconds(0.48), Hertz::from_mhz(20.0)).unwrap();
        assert_eq!(
            growth_preference(&w, 17, true),
            GrowthPreference::Processors
        );
        assert_eq!(growth_preference(&w, 19, true), GrowthPreference::Frequency);
        // Exactly at the breakpoint the ratio is 1.
        assert_eq!(
            growth_preference(&w, 18, true),
            GrowthPreference::Indifferent
        );
    }

    #[test]
    fn fully_parallel_always_prefers_processors_above_pivot() {
        let w = AmdahlWorkload::fully_parallel(seconds(4.8), Hertz::from_mhz(20.0)).unwrap();
        for n in 1..=64 {
            assert_eq!(growth_preference(&w, n, true), GrowthPreference::Processors);
        }
    }

    #[test]
    fn case1_small_power_single_slow_processor() {
        let p = dvfs_platform();
        let pt = continuous_operating_point(&p, watts(0.001));
        assert_eq!(pt.n, 1.0);
        assert!(pt.f.value() < p.vf.pivot_frequency(p.v_min).value());
    }

    #[test]
    fn case2_medium_power_adds_processors_at_pivot() {
        let p = dvfs_platform();
        let g_vmin = p.vf.pivot_frequency(p.v_min);
        let chip = p.power.c2 * g_vmin.value() * p.v_min.value() * p.v_min.value();
        let pt = continuous_operating_point(&p, watts(3.0 * chip));
        assert!((pt.n - 3.0).abs() < 1e-9, "n = {}", pt.n);
        assert!((pt.f.value() - g_vmin.value()).abs() < 1.0);
    }

    #[test]
    fn case3_holds_n_star_and_raises_frequency() {
        let mut p = dvfs_platform();
        // Make n* = 4 (< 7 workers): Tt/Ts = 3 ⇒ Ts = Tt/3.
        p.workload =
            AmdahlWorkload::new(seconds(4.8), seconds(1.6), Hertz::from_mhz(20.0)).unwrap();
        let g_vmin = p.vf.pivot_frequency(p.v_min);
        let chip_at = |f: Hertz| {
            let v = p.vf.operating_voltage(f, p.v_min, p.v_max).unwrap();
            p.power.c2 * f.value() * v.value() * v.value()
        };
        let n_star = 4.0;
        let budget = n_star * chip_at(g_vmin) * 2.0; // inside case 3
        let pt = continuous_operating_point(&p, watts(budget));
        assert!((pt.n - n_star).abs() < 1e-9, "n = {}", pt.n);
        assert!(pt.f.value() > g_vmin.value());
        // Power balances at the solved frequency.
        let achieved = pt.n * chip_at(pt.f);
        assert!((achieved - budget).abs() / budget < 1e-6);
    }

    #[test]
    fn case4_huge_power_maxes_everything() {
        let p = dvfs_platform();
        let pt = continuous_operating_point(&p, watts(1e6));
        assert_eq!(pt.n, p.workers() as f64);
        assert!((pt.f.value() - p.vf.max_frequency(p.v_max).value()).abs() < 1.0);
    }

    #[test]
    fn monotone_in_power() {
        let p = dvfs_platform();
        let mut last_perf = -1.0;
        let perf = p.perf_model();
        for i in 1..60 {
            let budget = watts(0.05 * i as f64);
            let pt = continuous_operating_point(&p, budget);
            let n = pt.n.floor().max(1.0) as usize;
            let v =
                p.vf.operating_voltage(pt.f, p.v_min, p.v_max)
                    .unwrap_or(p.v_max);
            let tp = perf.throughput(n, pt.f, v).value();
            assert!(
                tp + 1e-9 >= last_perf,
                "throughput regressed at budget {budget}: {tp} < {last_perf}"
            );
            last_perf = tp;
        }
    }

    #[test]
    fn fully_serial_pins_one_processor() {
        let mut p = dvfs_platform();
        p.workload =
            AmdahlWorkload::new(seconds(4.8), seconds(4.8), Hertz::from_mhz(20.0)).unwrap();
        let pt = continuous_operating_point(&p, watts(5.0));
        assert_eq!(pt.n, 1.0);
    }

    #[test]
    fn fixed_voltage_platform_degenerates_gracefully() {
        // PAMA: v_min = v_max ⇒ pivot = 80 MHz; everything is case 1/2-ish.
        let p = Platform::pama();
        let pt = continuous_operating_point(&p, watts(0.2));
        assert_eq!(pt.n, 1.0);
        assert!(pt.f.value() <= Hertz::from_mhz(80.0).value() + 1.0);
        let pt_big = continuous_operating_point(&p, watts(10.0));
        assert!(pt_big.n > 1.0);
    }
}
