//! Numerical validation of the §4.2 marginal analysis (Eqs. 12–17).
//!
//! The paper derives `∂Perf/∂Power` in closed form along two directions —
//! frequency at constant `n` (Eqs. 12/15) and processor count at constant
//! `f` (Eqs. 13/16) — and compares them (Eqs. 14/17) to decide which knob
//! to grow. This module evaluates *performance as a function of power*
//! along each direction directly from the Eq. 3/6 models, so the closed
//! forms can be checked against central differences (see the tests) and
//! the crossover curves can be plotted by the examples.
//!
//! Everything here treats `n` as continuous, exactly as the derivation
//! does; Algorithm 2 handles the discretization.

use crate::model::AmdahlWorkload;
use crate::platform::Platform;
use crate::units::{hertz, Hertz, Watts};

/// Performance (jobs/s, Eq. 3 with `c1` normalized as in
/// [`crate::model::PerfModel`]) at continuous `(n, f)` with the Eq. 11
/// voltage.
pub fn perf_continuous(platform: &Platform, n: f64, f: Hertz) -> f64 {
    if n <= 0.0 || f.value() <= 0.0 {
        return 0.0;
    }
    let w = &platform.workload;
    let eff = f.min(platform.vf.max_frequency(platform.v_max));
    let t = (w.serial.value() + (w.total.value() - w.serial.value()) / n)
        * (w.f_ref.value() / eff.value());
    1.0 / t
}

/// Board power (Eq. 6, no standby floor — the idealized model the
/// derivation uses) at continuous `(n, f)` with the Eq. 11 voltage.
pub fn power_continuous(platform: &Platform, n: f64, f: Hertz) -> Watts {
    let v = platform
        .vf
        .operating_voltage(f, platform.v_min, platform.v_max)
        .unwrap_or(platform.v_max);
    Watts(platform.power.c2 * n * f.value() * v.value() * v.value())
}

/// Invert `power_continuous` in `f` at fixed `n` (bisection over
/// `[0, g(v_max)]`); `None` if the budget exceeds what `n` chips can draw.
pub fn frequency_for_power(platform: &Platform, n: f64, budget: Watts) -> Option<Hertz> {
    let f_max = platform.vf.max_frequency(platform.v_max);
    if power_continuous(platform, n, f_max).value() < budget.value() - 1e-12 {
        return None;
    }
    let (mut lo, mut hi) = (0.0, f_max.value());
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if power_continuous(platform, n, hertz(mid)).value() < budget.value() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hertz(0.5 * (lo + hi)))
}

/// Performance as a function of power at **constant `n`** (the Eq. 12/15
/// curve): spend the budget on frequency (and voltage above the pivot).
pub fn perf_vs_power_fixed_n(platform: &Platform, n: f64, budget: Watts) -> f64 {
    match frequency_for_power(platform, n, budget) {
        Some(f) => perf_continuous(platform, n, f),
        None => perf_continuous(platform, n, platform.vf.max_frequency(platform.v_max)),
    }
}

/// Performance as a function of power at **constant `f`** (the Eq. 13/16
/// curve): spend the budget on processors.
pub fn perf_vs_power_fixed_f(platform: &Platform, f: Hertz, budget: Watts) -> f64 {
    let per_chip = power_continuous(platform, 1.0, f).value();
    if per_chip <= 0.0 {
        return 0.0;
    }
    let n = budget.value() / per_chip;
    perf_continuous(platform, n, f)
}

/// Central-difference `∂Perf/∂Power` along the constant-`n` direction.
pub fn dperf_dpower_fixed_n(platform: &Platform, n: f64, at: Watts, h: f64) -> f64 {
    let up = perf_vs_power_fixed_n(platform, n, Watts(at.value() + h));
    let dn = perf_vs_power_fixed_n(platform, n, Watts(at.value() - h));
    (up - dn) / (2.0 * h)
}

/// Central-difference `∂Perf/∂Power` along the constant-`f` direction.
pub fn dperf_dpower_fixed_f(platform: &Platform, f: Hertz, at: Watts, h: f64) -> f64 {
    let up = perf_vs_power_fixed_f(platform, f, Watts(at.value() + h));
    let dn = perf_vs_power_fixed_f(platform, f, Watts(at.value() - h));
    (up - dn) / (2.0 * h)
}

/// The closed-form Eq. 14 ratio (below the pivot):
/// `n·Ts/(Tt − Ts) + 1`.
pub fn eq14_ratio(workload: &AmdahlWorkload, n: f64) -> f64 {
    let par = workload.total.value() - workload.serial.value();
    n * workload.serial.value() / par + 1.0
}

/// The closed-form Eq. 17 ratio (above the pivot):
/// `n·Ts/(3(Tt − Ts)) + 1/3`.
pub fn eq17_ratio(workload: &AmdahlWorkload, n: f64) -> f64 {
    let par = workload.total.value() - workload.serial.value();
    n * workload.serial.value() / (3.0 * par) + 1.0 / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AmdahlWorkload, VoltageFrequencyMap};
    use crate::units::{seconds, volts, watts};

    /// A platform where the pivot sits in the middle of the range so both
    /// regimes are reachable: g(v) affine through the origin region.
    fn platform() -> Platform {
        let mut p = Platform::pama_dvfs();
        p.workload =
            AmdahlWorkload::new(seconds(4.8), seconds(0.96), Hertz::from_mhz(20.0)).unwrap();
        p
    }

    /// Below the pivot, voltage is pinned at v_min and power is linear in
    /// f; the numerical dPerf/dPower ratio must match Eq. 14.
    #[test]
    fn numerical_ratio_matches_eq14_below_pivot() {
        let p = platform();
        let n = 3.0;
        // Pick an operating power well below the pivot at this n.
        let g_vmin = p.vf.pivot_frequency(p.v_min);
        let f_op = hertz(0.4 * g_vmin.value());
        let at = power_continuous(&p, n, f_op);
        let h = at.value() * 1e-4;
        let num_n = dperf_dpower_fixed_n(&p, n, at, h);
        let num_f = dperf_dpower_fixed_f(&p, f_op, at, h);
        let measured = num_n / num_f;
        let expected = eq14_ratio(&p.workload, n);
        assert!(
            (measured - expected).abs() / expected < 0.02,
            "measured {measured}, Eq. 14 gives {expected}"
        );
    }

    /// Above the pivot, voltage tracks frequency and power grows cubically
    /// in f… for the ideal alpha-power law. Our affine g(v) with threshold
    /// is the paper's model only when threshold = 0 (v ∝ f exactly), so
    /// validate Eq. 17 on that configuration.
    #[test]
    fn numerical_ratio_matches_eq17_above_pivot() {
        let mut p = platform();
        p.vf = VoltageFrequencyMap::Affine {
            slope: 80.0e6 / 3.3,
            threshold: volts(0.0),
        };
        p.v_min = volts(0.5);
        p.v_max = volts(3.3);
        let n = 3.0;
        let g_vmin = p.vf.pivot_frequency(p.v_min);
        let f_op = hertz(3.0 * g_vmin.value()); // well above the pivot
        let at = power_continuous(&p, n, f_op);
        let h = at.value() * 1e-4;
        let num_n = dperf_dpower_fixed_n(&p, n, at, h);
        let num_f = dperf_dpower_fixed_f(&p, f_op, at, h);
        let measured = num_n / num_f;
        let expected = eq17_ratio(&p.workload, n);
        assert!(
            (measured - expected).abs() / expected < 0.03,
            "measured {measured}, Eq. 17 gives {expected}"
        );
    }

    /// The Eq. 17 crossover: the two directional derivatives are equal at
    /// exactly n* = 2(Tt/Ts − 1).
    #[test]
    fn crossover_sits_at_the_eq18_breakpoint() {
        let mut p = platform();
        p.vf = VoltageFrequencyMap::Affine {
            slope: 80.0e6 / 3.3,
            threshold: volts(0.0),
        };
        p.v_min = volts(0.2);
        p.v_max = volts(5.0);
        let n_star = p.workload.breakpoint_processors().unwrap(); // = 8
        assert!((n_star - 8.0).abs() < 1e-9);
        assert!((eq17_ratio(&p.workload, n_star) - 1.0).abs() < 1e-12);
        // Numerically too.
        let g_vmin = p.vf.pivot_frequency(p.v_min);
        let f_op = hertz(4.0 * g_vmin.value());
        let at = power_continuous(&p, n_star, f_op);
        let h = at.value() * 1e-4;
        let ratio = dperf_dpower_fixed_n(&p, n_star, at, h) / dperf_dpower_fixed_f(&p, f_op, at, h);
        assert!((ratio - 1.0).abs() < 0.03, "ratio {ratio}");
    }

    /// Inversion sanity: frequency_for_power ∘ power_continuous ≈ identity.
    #[test]
    fn frequency_power_inversion_roundtrip() {
        let p = platform();
        for &mhz in &[5.0, 15.0, 40.0, 75.0] {
            let f = Hertz::from_mhz(mhz);
            let budget = power_continuous(&p, 4.0, f);
            let back = frequency_for_power(&p, 4.0, budget).unwrap();
            assert!(
                (back.value() - f.value()).abs() / f.value() < 1e-6,
                "{mhz} MHz -> {} MHz",
                back.mhz()
            );
        }
    }

    #[test]
    fn over_budget_returns_none() {
        let p = platform();
        assert!(frequency_for_power(&p, 1.0, watts(100.0)).is_none());
    }

    #[test]
    fn perf_curves_are_monotone_in_power() {
        let p = platform();
        let mut last_n = 0.0;
        let mut last_f = 0.0;
        for i in 1..40 {
            let w = watts(0.02 * i as f64);
            let a = perf_vs_power_fixed_n(&p, 3.0, w);
            let b = perf_vs_power_fixed_f(&p, Hertz::from_mhz(30.0), w);
            assert!(a + 1e-12 >= last_n);
            assert!(b + 1e-12 >= last_f);
            last_n = a;
            last_f = b;
        }
    }
}
