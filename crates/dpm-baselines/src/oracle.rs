//! The clairvoyant oracle: replays a precomputed per-slot schedule.
//!
//! Fed the offline Algorithm 2 plan computed on the *exact* realized
//! supply and event schedules, this is the performance ceiling a causal
//! governor can be compared against; any gap between the proposed
//! controller and the oracle is the price of forecasting error.

use dpm_core::error::DpmError;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::params::{OperatingPoint, ParameterSchedule};

/// Schedule-replaying governor (cycles per period).
#[derive(Debug, Clone)]
pub struct OracleGovernor {
    points: Vec<OperatingPoint>,
}

impl OracleGovernor {
    /// Replay an explicit point sequence, cycled.
    ///
    /// # Errors
    /// [`DpmError::EmptyScheduleWindow`] on an empty sequence.
    pub fn new(points: Vec<OperatingPoint>) -> Result<Self, DpmError> {
        if points.is_empty() {
            return Err(DpmError::EmptyScheduleWindow);
        }
        Ok(Self { points })
    }

    /// Replay an Algorithm 2 plan.
    ///
    /// # Errors
    /// [`DpmError::EmptyScheduleWindow`] on a plan with no slots.
    pub fn from_schedule(schedule: &ParameterSchedule) -> Result<Self, DpmError> {
        Self::new(schedule.slots.iter().map(|s| s.point).collect())
    }

    /// Slots per cycle.
    pub fn period_slots(&self) -> usize {
        self.points.len()
    }
}

impl Governor for OracleGovernor {
    fn name(&self) -> &str {
        "oracle"
    }

    fn uses_surplus_energy(&self) -> bool {
        true // replays the proposed plan, including its background work
    }

    fn decide(&mut self, obs: &SlotObservation) -> Result<OperatingPoint, DpmError> {
        // The constructor guaranteed a non-empty cycle.
        self.points
            .get((obs.slot as usize) % self.points.len())
            .copied()
            .ok_or(DpmError::EmptyScheduleWindow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::units::{joules, volts, Hertz, Joules, Seconds};

    fn obs(slot: u64) -> SlotObservation {
        SlotObservation {
            slot,
            time: Seconds(slot as f64 * 4.8),
            battery: joules(8.0),
            used_last: Joules::ZERO,
            supplied_last: Joules::ZERO,
            backlog: 1,
        }
    }

    #[test]
    fn replays_and_cycles() {
        let a = OperatingPoint::new(1, Hertz::from_mhz(20.0), volts(3.3));
        let b = OperatingPoint::new(7, Hertz::from_mhz(80.0), volts(3.3));
        let mut g = OracleGovernor::new(vec![a, b]).unwrap();
        assert_eq!(g.decide(&obs(0)).unwrap(), a);
        assert_eq!(g.decide(&obs(1)).unwrap(), b);
        assert_eq!(g.decide(&obs(2)).unwrap(), a);
        assert_eq!(g.period_slots(), 2);
    }

    #[test]
    fn builds_from_algorithm2_schedule() {
        use dpm_core::params::ParameterScheduler;
        use dpm_core::platform::Platform;
        use dpm_core::series::PowerSeries;
        let platform = Platform::pama();
        let charging = PowerSeries::new(
            Seconds(4.8),
            vec![2.36; 6].into_iter().chain(vec![0.0; 6]).collect(),
        )
        .unwrap();
        let alloc = PowerSeries::constant(Seconds(4.8), 12, 1.1).unwrap();
        let plan = ParameterScheduler::new(platform)
            .unwrap()
            .plan(&alloc, &charging, joules(8.0))
            .unwrap();
        let mut g = OracleGovernor::from_schedule(&plan).unwrap();
        assert_eq!(g.period_slots(), 12);
        // The replayed point matches the planned one.
        assert_eq!(g.decide(&obs(3)).unwrap(), plan.slots[3].point);
    }

    #[test]
    fn rejects_empty_schedule() {
        use dpm_core::error::DpmError;
        assert!(matches!(
            OracleGovernor::new(vec![]),
            Err(DpmError::EmptyScheduleWindow)
        ));
    }
}
