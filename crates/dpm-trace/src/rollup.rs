//! Streaming rollup engine: fold a schema-v1 line stream into windowed
//! time-series, **deterministic in sim-time**.
//!
//! A [`Rollup`] consumes [`TraceLine`]s one at a time (the same shape a
//! live `dpm-serve` session streams) and maintains, per N-slot window:
//!
//! - **counter rates** — how often each event name fired in the window
//!   ([`RollupWindow::count`] / [`Rollup::rate`]);
//! - **gauge last-values** — the most recent value of every numeric
//!   event field, keyed `"<event>.<field>"` ([`RollupWindow::last`]);
//! - **histogram quantiles** — a fixed-bucket [`Histogram`] per field
//!   key, queryable through [`crate::summary::quantile`] via
//!   [`RollupWindow::histogram`].
//!
//! Events without a slot stamp, and the whole-stream aggregate, land in
//! [`Rollup::totals`]. Gauge and counter lines (the deterministic tail
//! of a batch document) are kept as plain last-value maps. Everything is
//! `BTreeMap`-backed and driven only by sim-time fields, so two
//! identical streams produce byte-identical rollup state — the property
//! the `dpm-serve` metrics snapshot's determinism rests on.

use dpm_telemetry::{Event, Histogram, HistogramLine, TraceLine};
use std::collections::BTreeMap;

/// Accumulated state for one window (or the whole stream).
#[derive(Debug, Clone, Default)]
pub struct RollupWindow {
    events: u64,
    counts: BTreeMap<String, u64>,
    last: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl RollupWindow {
    /// Events folded into this window.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// How often event `name` fired in this window.
    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Event names seen in this window, with their counts, sorted.
    pub fn counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Last value of field key `"<event>.<field>"` in this window.
    pub fn last(&self, key: &str) -> Option<f64> {
        self.last.get(key).copied()
    }

    /// Snapshot the distribution of field key `"<event>.<field>"` as a
    /// [`HistogramLine`] — feed it to [`crate::summary::quantile`].
    pub fn histogram(&self, key: &str) -> Option<HistogramLine> {
        self.hists.get(key).map(|h| HistogramLine {
            name: key.to_string(),
            bounds: h.bounds().to_vec(),
            counts: h.counts().to_vec(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
        })
    }

    fn fold(&mut self, event: &Event) {
        self.events += 1;
        *self.counts.entry(event.name.clone()).or_insert(0) += 1;
        for (field, value) in &event.fields {
            let key = format!("{}.{}", event.name, field);
            self.last.insert(key.clone(), *value);
            self.hists
                .entry(key)
                .or_insert_with(Histogram::with_default_bounds)
                .record(*value);
        }
    }
}

/// The streaming rollup state; see the module docs.
#[derive(Debug, Clone)]
pub struct Rollup {
    window_slots: u64,
    gauges: BTreeMap<String, f64>,
    counters: BTreeMap<String, u64>,
    totals: RollupWindow,
    windows: BTreeMap<u64, RollupWindow>,
}

impl Rollup {
    /// A rollup that groups slots into windows of `window_slots`
    /// (clamped to at least 1 — a zero width would fold everything into
    /// window 0 anyway, just with a division hazard).
    pub fn new(window_slots: u64) -> Self {
        Self {
            window_slots: window_slots.max(1),
            gauges: BTreeMap::new(),
            counters: BTreeMap::new(),
            totals: RollupWindow::default(),
            windows: BTreeMap::new(),
        }
    }

    /// The configured window width in slots.
    pub fn window_slots(&self) -> u64 {
        self.window_slots
    }

    /// Fold one trace line. Events land in their slot's window (and the
    /// totals); gauge and counter lines update the last-value maps; meta,
    /// histogram, and span lines are end-of-run artifacts with no
    /// time-series content and are ignored.
    pub fn push(&mut self, line: &TraceLine) {
        match line {
            TraceLine::Event(e) => self.push_event(e),
            TraceLine::Gauge(g) => {
                self.gauges.insert(g.name.clone(), g.value);
            }
            TraceLine::Counter(c) => {
                self.counters.insert(c.name.clone(), c.value);
            }
            TraceLine::Meta(_) | TraceLine::Histogram(_) | TraceLine::Span(_) => {}
        }
    }

    /// Fold one event (the live-stream fast path).
    pub fn push_event(&mut self, event: &Event) {
        self.totals.fold(event);
        if let Some(slot) = event.slot {
            self.windows
                .entry(slot / self.window_slots)
                .or_default()
                .fold(event);
        }
    }

    /// The whole-stream aggregate (slotless events included).
    pub fn totals(&self) -> &RollupWindow {
        &self.totals
    }

    /// Windows in index order (`window i` covers slots
    /// `[i·window_slots, (i+1)·window_slots)`).
    pub fn windows(&self) -> impl Iterator<Item = (u64, &RollupWindow)> {
        self.windows.iter().map(|(&i, w)| (i, w))
    }

    /// The window at `index`, when any of its slots emitted events.
    pub fn window(&self, index: u64) -> Option<&RollupWindow> {
        self.windows.get(&index)
    }

    /// The most recent populated window.
    pub fn latest(&self) -> Option<(u64, &RollupWindow)> {
        self.windows.iter().next_back().map(|(&i, w)| (i, w))
    }

    /// Event rate (events/s) of `name` in window `index`, given the slot
    /// width `tau_s`. Zero for an absent window or a non-positive tau.
    pub fn rate(&self, index: u64, name: &str, tau_s: f64) -> f64 {
        let span = self.window_slots as f64 * tau_s;
        if span <= 0.0 {
            return 0.0;
        }
        self.window(index).map_or(0.0, |w| w.count(name) as f64) / span
    }

    /// Last value of gauge `name` (from `Gauge` lines, not events).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Final value of counter `name` (from `Counter` lines).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Per-window counts of event `name`, in window order — the
    /// windowed time-series a dashboard plots.
    pub fn series(&self, name: &str) -> Vec<(u64, u64)> {
        self.windows
            .iter()
            .map(|(&i, w)| (i, w.count(name)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::quantile;
    use dpm_telemetry::{CounterLine, GaugeLine, Recorder};

    fn slot_event(slot: u64, battery: f64) -> Event {
        Event {
            seq: slot,
            scope: String::new(),
            name: "sim.slot".into(),
            slot: Some(slot),
            time: slot as f64 * 4.8,
            fields: vec![("battery_j".into(), battery)],
            detail: None,
        }
    }

    #[test]
    fn events_fold_into_slot_windows() {
        let mut r = Rollup::new(4);
        for slot in 0..10 {
            r.push_event(&slot_event(slot, slot as f64));
        }
        let indices: Vec<u64> = r.windows().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert_eq!(r.window(0).map(|w| w.count("sim.slot")), Some(4));
        assert_eq!(r.window(2).map(|w| w.count("sim.slot")), Some(2));
        assert_eq!(r.series("sim.slot"), vec![(0, 4), (1, 4), (2, 2)]);
        assert_eq!(r.totals().count("sim.slot"), 10);
        // Last-value per window tracks the newest field value.
        assert_eq!(
            r.window(1).and_then(|w| w.last("sim.slot.battery_j")),
            Some(7.0)
        );
        assert_eq!(r.latest().map(|(i, _)| i), Some(2));
        // Rate: 4 events over a 4-slot window of 4.8 s slots.
        let rate = r.rate(0, "sim.slot", 4.8);
        assert!((rate - 4.0 / (4.0 * 4.8)).abs() < 1e-12, "{rate}");
        assert_eq!(r.rate(9, "sim.slot", 4.8), 0.0);
    }

    #[test]
    fn slotless_events_land_in_totals_only() {
        let mut r = Rollup::new(4);
        r.push_event(&Event {
            slot: None,
            ..slot_event(0, 1.0)
        });
        assert_eq!(r.windows().count(), 0);
        assert_eq!(r.totals().events(), 1);
        assert_eq!(r.totals().last("sim.slot.battery_j"), Some(1.0));
    }

    #[test]
    fn window_histograms_answer_quantiles() {
        let mut r = Rollup::new(8);
        for slot in 0..8 {
            r.push_event(&slot_event(slot, (slot % 4) as f64));
        }
        let h = r
            .window(0)
            .and_then(|w| w.histogram("sim.slot.battery_j"))
            .expect("histogram");
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 3.0);
        let p50 = quantile(&h, 0.5);
        assert!((0.0..=2.0).contains(&p50), "{p50}");
        assert!(r
            .window(0)
            .is_some_and(|w| w.histogram("no.such").is_none()));
    }

    #[test]
    fn gauge_and_counter_lines_keep_last_values() {
        let mut r = Rollup::new(4);
        r.push(&TraceLine::Gauge(GaugeLine {
            name: "sim.c_min_j".into(),
            value: 1.25,
        }));
        r.push(&TraceLine::Gauge(GaugeLine {
            name: "sim.c_min_j".into(),
            value: 2.5,
        }));
        r.push(&TraceLine::Counter(CounterLine {
            name: "serve.slots_stepped".into(),
            value: 24,
        }));
        assert_eq!(r.gauge("sim.c_min_j"), Some(2.5));
        assert_eq!(r.counter("serve.slots_stepped"), Some(24));
        assert_eq!(r.gauge("absent"), None);
        assert_eq!(r.counter("absent"), None);
    }

    #[test]
    fn identical_streams_produce_identical_rollups() {
        let build = || {
            let rec = Recorder::enabled("t");
            rec.gauge("sim.c_min_j", 0.5);
            for slot in 0..12 {
                rec.event(
                    "sim.slot",
                    Some(slot),
                    slot as f64,
                    &[("battery_j", (slot % 5) as f64)],
                );
            }
            let mut r = Rollup::new(6);
            for line in rec.snapshot() {
                r.push(&line);
            }
            r
        };
        let (a, b) = (build(), build());
        assert_eq!(a.series("sim.slot"), b.series("sim.slot"));
        let qa = a
            .window(0)
            .and_then(|w| w.histogram("sim.slot.battery_j"))
            .map(|h| quantile(&h, 0.9));
        let qb = b
            .window(0)
            .and_then(|w| w.histogram("sim.slot.battery_j"))
            .map(|h| quantile(&h, 0.9));
        assert_eq!(qa, qb);
    }

    #[test]
    fn zero_window_width_is_clamped() {
        let r = Rollup::new(0);
        assert_eq!(r.window_slots(), 1);
    }
}
