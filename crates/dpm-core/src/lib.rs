//! # dpm-core
//!
//! A faithful reimplementation of the dynamic power-management algorithm of
//! Suh, Kang & Crago, *Dynamic Power Management of Multiprocessor Systems*
//! (IPPS/IPDPS 2002): maximize energy utilization first, then performance,
//! for a multiprocessor fed by a rechargeable battery with a periodic
//! external source.
//!
//! The crate mirrors the paper's decomposition:
//!
//! | Paper | Module |
//! |---|---|
//! | §3 models (Eqs. 1–6, 11) | [`model`] |
//! | §4.1 initial power allocation (Eqs. 7–10, Algorithm 1) | [`alloc`] |
//! | §4.2 parameter computation (Eqs. 12–18, Algorithm 2) | [`params`] |
//! | §4.3 runtime update (Algorithm 3) + controller | [`runtime`] |
//! | §6 future-work extensions | [`params::hetero`] |
//!
//! ## Quick example
//!
//! Every constructor that accepts external data returns a
//! [`Result`]`<_, `[`error::DpmError`]`>`, so the whole pipeline composes
//! with `?`:
//!
//! ```
//! use dpm_core::prelude::*;
//!
//! fn main() -> Result<(), DpmError> {
//!     // The PAMA satellite board of the paper's §5.
//!     let platform = Platform::pama();
//!
//!     // Expected charging (sun then eclipse) and event-rate schedules.
//!     let tau = platform.tau;
//!     let charging =
//!         PowerSeries::new(tau, vec![2.36; 6].into_iter().chain(vec![0.0; 6]).collect())?;
//!     let events = PowerSeries::new(tau, vec![1.6, 1.0, 0.3, 0.3, 1.0, 1.7,
//!                                             1.6, 1.0, 0.3, 0.3, 1.0, 1.7])?;
//!     let demand = DemandModel::unweighted(events)?;
//!
//!     // §4.1: initial power allocation.
//!     let problem = AllocationProblem {
//!         charging: charging.clone(),
//!         demand: demand.wpuf(),
//!         initial_charge: joules(8.0),
//!         limits: platform.battery,
//!         p_floor: platform.power.all_standby(),
//!         p_ceiling: platform.board_power(7, platform.f_max()),
//!     };
//!     let allocation = InitialAllocator::new(problem)?.compute()?;
//!     assert!(allocation.feasible);
//!
//!     // §4.2/§4.3: the runtime controller.
//!     let mut governor = DpmController::new(platform, &allocation, charging)?;
//!     let point = governor.decide(&SlotObservation::initial(joules(8.0)))?;
//!     println!("first slot runs {point}");
//!     Ok(())
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > 0.0)`-style checks are deliberate: unlike `x <= 0.0` they also
// reject NaN, which is exactly what the validation layer is for.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod alloc;
pub mod error;
pub mod forecast;
pub mod governor;
pub mod model;
pub mod params;
pub mod platform;
pub mod runtime;
pub mod series;
pub mod units;

// Compile-time thread-safety audit. The parallel experiment harness in
// `dpm-bench` fans sweep points and governor runs out over scoped worker
// threads, sharing read-only platforms/scenarios/allocations by reference
// (or `Arc`) and moving per-job results back. Everything it shares or
// moves must therefore be `Send + Sync`; this block turns an accidental
// `Rc`/`RefCell`/raw-pointer regression in any of these types into a
// compile error instead of a downstream build break.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<platform::Platform>();
    assert_send_sync::<platform::BatteryLimits>();
    assert_send_sync::<series::PowerSeries>();
    assert_send_sync::<series::EnergyTrajectory>();
    assert_send_sync::<alloc::InitialAllocation>();
    assert_send_sync::<alloc::AllocationProblem>();
    assert_send_sync::<params::OperatingPoint>();
    assert_send_sync::<params::ParetoTable>();
    assert_send_sync::<runtime::DpmController>();
    assert_send_sync::<runtime::AdaptiveDpmController>();
    assert_send_sync::<runtime::SafetyGovernor<runtime::DpmController>>();
    assert_send_sync::<runtime::DegradationRecord>();
    assert_send_sync::<error::DpmError>();
};

/// One-stop imports for typical users.
pub mod prelude {
    pub use crate::alloc::{
        normalize_to_supply, AllocationProblem, DemandModel, InitialAllocation, InitialAllocator,
    };
    pub use crate::error::DpmError;
    pub use crate::forecast::{ForecastMethod, ScheduleEstimator};
    pub use crate::governor::{Governor, SlotObservation};
    pub use crate::model::{AmdahlWorkload, ModePower, PerfModel, PowerModel, VoltageFrequencyMap};
    pub use crate::params::{OperatingPoint, ParameterScheduler, ParetoTable};
    pub use crate::platform::{BatteryLimits, Platform, SwitchOverheads};
    pub use crate::runtime::{
        redistribute, AdaptiveDpmController, ControllerRecord, DegradationRecord, DpmController,
        SafetyConfig, SafetyGovernor, SafetyTransition,
    };
    pub use crate::series::{EnergyTrajectory, PowerSeries};
    pub use crate::units::{
        hertz, joules, seconds, volts, watts, Hertz, Joules, Seconds, Volts, Watts,
    };
    pub use dpm_telemetry::{Recorder, SpanGuard};
}
