//! Power-topology governance for the PAMA board: maps broker decisions
//! (or their deliberate absence) onto chip power rails.
//!
//! The PAMA platform is not a flat pool of eight identical chips: worker
//! PIMs hang off two ring-interconnect power domains, the charge gauge
//! hangs off a sensor bus, and everything hangs off the board bus. This
//! module declares that structure as a `dpm-broker` [`Topology`]
//! ([`pama_topology`]) and runs it in one of two modes:
//!
//! - [`TopologyMode::Broker`] — the robustness kernel. Worker demand is
//!   expressed as leases; the broker reconciles it against element faults
//!   in dependency order, cascades provider faults to a legal degraded
//!   configuration, and walks the board down to its minimum legal state
//!   when the governor's fallback budget is exhausted. Chips whose rail
//!   element is down are physically unpowered on the [`PamaBoard`].
//! - [`TopologyMode::Flat`] — the pre-broker strawman: topology-blind
//!   positional activation. A faulted provider takes only *itself* dark;
//!   dependent chips keep drawing power while serving nothing
//!   ([`PamaBoard::set_impaired`]), and the emitted `broker.level` trace
//!   shows children powered above a dead provider — exactly the
//!   topology-legality violation `dpm-trace`'s audit flags.
//!
//! Both modes emit the same self-describing `broker.*` telemetry, so the
//! campaign's flat and broker arms are audit-comparable.

use crate::board::PamaBoard;
use crate::error::SimError;
use crate::stats::BrokerStats;
use dpm_broker::BrokerError;
use dpm_broker::{Broker, BrokerConfig, BrokerCounts, Cause, Topology, TopologyBuilder};
use dpm_core::units::Seconds;
use dpm_telemetry::Recorder;

/// Board bus: the root power element everything depends on.
pub const EL_BUS: usize = 0;
/// Controller PIM power (chip 0; held up whenever the board runs).
pub const EL_CTRL: usize = 1;
/// Ring interconnect domain A (feeds worker chips 1–4).
pub const EL_RING_A: usize = 2;
/// Ring interconnect domain B (feeds worker chips 5–7).
pub const EL_RING_B: usize = 3;
/// Sensor bus (feeds the charge gauge).
pub const EL_SENSOR_BUS: usize = 4;
/// Battery charge gauge; when dark, governor observations go stale.
pub const EL_GAUGE: usize = 5;
/// Worker-chip rail elements, index `i` powering board chip `i + 1`.
pub const EL_WORKERS: [usize; 7] = [6, 7, 8, 9, 10, 11, 12];
/// Elements other elements depend on — the fault-injection targets that
/// distinguish broker-ordered shedding from flat governance.
pub const PROVIDER_ELEMENTS: [usize; 3] = [EL_RING_A, EL_RING_B, EL_SENSOR_BUS];
/// Total element count of [`pama_topology`].
pub const ELEMENTS: usize = 13;

/// The PAMA power-element topology (all elements binary, floor 0):
///
/// ```text
/// bus ─┬─ ctrl
///      ├─ ring-a ─┬─ worker-1 … worker-4
///      ├─ ring-b ─┬─ worker-5 … worker-7
///      └─ sensor-bus ── gauge
/// ```
///
/// # Errors
/// Never fails for this fixed shape; the `Result` is the builder's.
pub fn pama_topology() -> Result<Topology, BrokerError> {
    let mut b = TopologyBuilder::new();
    let bus = b.element("bus", 1, 0);
    let ctrl = b.element("ctrl", 1, 0);
    let ring_a = b.element("ring-a", 1, 0);
    let ring_b = b.element("ring-b", 1, 0);
    let sensor_bus = b.element("sensor-bus", 1, 0);
    let gauge = b.element("gauge", 1, 0);
    b.edge(ctrl, bus, 1);
    b.edge(ring_a, bus, 1);
    b.edge(ring_b, bus, 1);
    b.edge(sensor_bus, bus, 1);
    b.edge(gauge, sensor_bus, 1);
    for (i, &el) in EL_WORKERS.iter().enumerate() {
        let w = b.element(&format!("worker-{}", i + 1), 1, 0);
        debug_assert_eq!(w, el);
        let ring = if i < 4 { ring_a } else { ring_b };
        b.edge(el, ring, 1);
    }
    debug_assert_eq!(
        [bus, ctrl, ring_a, ring_b, sensor_bus, gauge],
        [
            EL_BUS,
            EL_CTRL,
            EL_RING_A,
            EL_RING_B,
            EL_SENSOR_BUS,
            EL_GAUGE
        ]
    );
    b.build()
}

/// How element faults are governed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyMode {
    /// Topology-blind positional activation (the pre-broker strawman).
    Flat,
    /// Lease-based dependency-ordered governance (the robustness kernel).
    Broker,
}

impl TopologyMode {
    /// Stable string for reports and telemetry.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Flat => "flat",
            Self::Broker => "broker",
        }
    }
}

/// Per-slot bridge between a [`Broker`] (or flat strawman) and the
/// physical [`PamaBoard`] rails. Owned by `Simulation` when a topology is
/// attached ([`crate::sim::Simulation::with_topology`]).
#[derive(Debug, Clone)]
pub struct TopologyRuntime {
    mode: TopologyMode,
    topo: Topology,
    broker: Option<Broker>,
    worker_leases: [usize; 7],
    /// Flat-mode levels: what the blind policy *claims* each element runs
    /// at — emitted as `broker.level` truth for the audit to judge.
    flat_level: Vec<u8>,
    /// Physical fault state, mode-independent (the broker keeps its own
    /// copy; this one also drives gauge staleness and flat impairment).
    faulted: Vec<bool>,
    flat_counts: BrokerCounts,
    telemetry: Recorder,
    slot: u64,
    time: f64,
}

impl TopologyRuntime {
    /// Build a runtime in `mode`, declaring the topology into `telemetry`
    /// (`broker.element` / `broker.edge` events plus a `broker.mode`
    /// gauge: 0 = flat, 1 = broker) so traces are self-describing.
    ///
    /// # Errors
    /// Propagates topology-construction or lease errors (none for the
    /// fixed PAMA shape, but the plumbing is honest).
    pub fn new(mode: TopologyMode, telemetry: Recorder) -> Result<Self, SimError> {
        let topo = pama_topology().map_err(SimError::from)?;
        let mut worker_leases = [0usize; 7];
        let broker = match mode {
            TopologyMode::Broker => {
                let mut br = Broker::new(topo.clone(), BrokerConfig::default())
                    .with_telemetry(telemetry.clone());
                // Infrastructure leases: controller and gauge are demanded
                // for the life of the run (they pull bus/sensor-bus up).
                for el in [EL_CTRL, EL_GAUGE] {
                    let l = br.lease(el, 1).map_err(SimError::from)?;
                    br.set_active(l, true).map_err(SimError::from)?;
                }
                for (i, &el) in EL_WORKERS.iter().enumerate() {
                    worker_leases[i] = br.lease(el, 1).map_err(SimError::from)?;
                }
                Some(br)
            }
            TopologyMode::Flat => {
                declare(&topo, &telemetry);
                None
            }
        };
        telemetry.gauge(
            "broker.mode",
            match mode {
                TopologyMode::Flat => 0.0,
                TopologyMode::Broker => 1.0,
            },
        );
        let n = topo.len();
        Ok(Self {
            mode,
            topo,
            broker,
            worker_leases,
            flat_level: vec![0; n],
            faulted: vec![false; n],
            flat_counts: BrokerCounts::default(),
            telemetry,
            slot: 0,
            time: 0.0,
        })
    }

    /// The governance mode.
    #[must_use]
    pub fn mode(&self) -> TopologyMode {
        self.mode
    }

    /// Whether terminal shutdown has executed (broker mode only; flat
    /// governance has no shutdown path — it limps forever).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.broker.as_ref().is_some_and(Broker::is_terminal)
    }

    /// Current element levels (broker truth, or the flat policy's claim).
    #[must_use]
    pub fn levels(&self) -> &[u8] {
        match &self.broker {
            Some(br) => br.levels(),
            None => &self.flat_level,
        }
    }

    /// Whether the charge gauge can produce a fresh reading. In broker
    /// mode that is "the gauge element is powered" (legality guarantees
    /// its providers then are too); in flat mode the gauge may *claim*
    /// power above a dead sensor bus, but physics still wins: any fault
    /// on the gauge's provider chain makes readings stale.
    #[must_use]
    pub fn gauge_powered(&self) -> bool {
        match &self.broker {
            Some(br) => br.level(EL_GAUGE).unwrap_or(0) >= 1,
            None => !self.chain_faulted(EL_GAUGE),
        }
    }

    /// Govern one slot: reconcile worker demand (`commanded` workers)
    /// against element faults, mirror rail state onto the board, and
    /// return how many worker chips actually have power. `exhausted`
    /// (the governor's fallback budget is spent) triggers the one-time
    /// terminal-shutdown walk in broker mode.
    ///
    /// # Errors
    /// Propagates broker lease errors (unreachable for the fixed PAMA
    /// wiring, but surfaced rather than swallowed).
    pub fn begin_slot(
        &mut self,
        slot: u64,
        time: Seconds,
        commanded: usize,
        exhausted: bool,
        board: &mut PamaBoard,
    ) -> Result<usize, SimError> {
        self.slot = slot;
        self.time = time.value();
        match self.mode {
            TopologyMode::Broker => self.broker_slot(slot, time, commanded, exhausted, board),
            TopologyMode::Flat => Ok(self.flat_slot(commanded, time, board)),
        }
    }

    fn broker_slot(
        &mut self,
        slot: u64,
        time: Seconds,
        commanded: usize,
        exhausted: bool,
        board: &mut PamaBoard,
    ) -> Result<usize, SimError> {
        let Some(br) = self.broker.as_mut() else {
            return Ok(0);
        };
        br.begin_slot(slot, time.value());
        if exhausted && !br.is_terminal() {
            // The governor has no path back to planned operation: walk the
            // topology down to its minimum legal state instead of burning
            // the battery on a frozen fallback point.
            br.shutdown();
        }
        if !br.is_terminal() {
            // Demand the first `commanded` servable worker elements; any
            // remaining demand lands on unavailable ones so a persistent
            // fault exercises the bounded retry/abandon path.
            let n = commanded.min(EL_WORKERS.len());
            let mut chosen = [false; 7];
            let mut picked = 0usize;
            for (i, &el) in EL_WORKERS.iter().enumerate() {
                if picked < n && br.is_available(el) {
                    chosen[i] = true;
                    picked += 1;
                }
            }
            for slot_choice in chosen.iter_mut() {
                if picked >= n {
                    break;
                }
                if !*slot_choice {
                    *slot_choice = true;
                    picked += 1;
                }
            }
            for (i, &demand) in chosen.iter().enumerate() {
                br.set_active(self.worker_leases[i], demand)
                    .map_err(SimError::from)?;
            }
            br.sync();
        }
        // Mirror rail truth onto the physical board.
        let mut granted = 0usize;
        for (i, &el) in EL_WORKERS.iter().enumerate() {
            let up = br.level(el).unwrap_or(0) >= 1;
            board.set_powered(i + 1, up, time);
            if up {
                granted += 1;
            }
        }
        Ok(granted.min(commanded))
    }

    fn flat_slot(&mut self, commanded: usize, time: Seconds, board: &mut PamaBoard) -> usize {
        // Topology-blind: infrastructure runs whenever its own element is
        // healthy; the command activates the first n worker slots
        // positionally, never consulting providers.
        let n = commanded.min(EL_WORKERS.len());
        let mut want = vec![0u8; self.topo.len()];
        for e in [
            EL_BUS,
            EL_CTRL,
            EL_RING_A,
            EL_RING_B,
            EL_SENSOR_BUS,
            EL_GAUGE,
        ] {
            if !self.faulted[e] {
                want[e] = 1;
            }
        }
        for (i, &el) in EL_WORKERS.iter().enumerate() {
            if i < n && !self.faulted[el] {
                want[el] = 1;
            }
        }
        // Drops leaves-first, raises providers-first: the *ordering* stays
        // clean even in flat mode — the audit violation flat produces is
        // about levels (children above a dead provider), not sequencing.
        let order: Vec<usize> = self.topo.order().to_vec();
        for &e in order.iter().rev() {
            if want[e] < self.flat_level[e] {
                self.flat_apply(e, want[e], Cause::Revoke);
            }
        }
        for &e in &order {
            if want[e] > self.flat_level[e] {
                self.flat_apply(e, want[e], Cause::Grant);
            }
        }
        self.flat_board_sync(board, time)
    }

    /// Mirror flat levels onto the board: dead worker rails are unpowered;
    /// powered chips above a broken provider chain are impaired — they
    /// draw active power and serve nothing. Returns powered worker count.
    fn flat_board_sync(&mut self, board: &mut PamaBoard, time: Seconds) -> usize {
        let mut granted = 0usize;
        for (i, &el) in EL_WORKERS.iter().enumerate() {
            let chip = i + 1;
            let up = self.flat_level[el] >= 1;
            board.set_powered(chip, up, time);
            board.set_impaired(chip, up && self.chain_faulted(el));
            if up {
                granted += 1;
            }
        }
        granted
    }

    /// Inject a fail-stop fault on `element` (out-of-range is ignored —
    /// fault plans are data, not code). Broker mode cascades dependents
    /// to a legal configuration immediately; flat mode takes only the
    /// element itself dark and leaves dependents drawing power.
    pub fn fault(&mut self, element: usize, at: Seconds, board: &mut PamaBoard) {
        if element >= self.topo.len() {
            return;
        }
        self.time = at.value();
        self.faulted[element] = true;
        match self.mode {
            TopologyMode::Broker => {
                if let Some(br) = self.broker.as_mut() {
                    // Unknown-element is screened above; terminal faults
                    // are accepted no-ops — both make this infallible.
                    let _ = br.fault(element, at.value());
                    for (i, &el) in EL_WORKERS.iter().enumerate() {
                        if br.level(el).unwrap_or(0) == 0 {
                            board.set_powered(i + 1, false, at);
                        }
                    }
                }
            }
            TopologyMode::Flat => {
                if self.flat_level[element] > 0 {
                    self.flat_apply(element, 0, Cause::Cascade);
                }
                self.flat_counts.cascades += 1;
                self.telemetry.incr("broker.cascades", 1);
                if self.telemetry.is_enabled() {
                    self.telemetry.event(
                        "broker.cascade",
                        Some(self.slot),
                        self.time,
                        &[("element", element as f64), ("dropped", 1.0)],
                    );
                }
                self.flat_board_sync(board, at);
            }
        }
    }

    /// Clear a fault (out-of-range ignored). Levels recover at the next
    /// slot's reconciliation in both modes — broker restores wait out
    /// dwell hysteresis, flat restores are immediate next slot.
    pub fn recover(&mut self, element: usize, at: Seconds) {
        if element >= self.topo.len() {
            return;
        }
        self.time = at.value();
        self.faulted[element] = false;
        if let Some(br) = self.broker.as_mut() {
            let _ = br.recover(element, at.value());
        }
    }

    /// Activity census for the run report.
    #[must_use]
    pub fn stats(&self) -> BrokerStats {
        let c = match &self.broker {
            Some(br) => br.counts(),
            None => self.flat_counts,
        };
        BrokerStats {
            mode: self.mode.as_str().to_string(),
            revocations: c.revocations,
            restores: c.restores,
            cascades: c.cascades,
            terminal_shutdowns: c.terminal_shutdowns,
            retries: c.retries,
            abandoned: c.abandoned,
        }
    }

    /// Whether `element` or anything on its provider chain is faulted.
    fn chain_faulted(&self, element: usize) -> bool {
        if self.faulted.get(element).copied().unwrap_or(false) {
            return true;
        }
        self.topo
            .providers_of(element)
            .iter()
            .any(|&(p, _)| self.chain_faulted(p))
    }

    /// Flat-mode level change: counters + the same `broker.level` event
    /// shape the broker emits, so both arms replay through one audit.
    fn flat_apply(&mut self, element: usize, to: u8, cause: Cause) {
        let from = self.flat_level[element];
        if from == to {
            return;
        }
        self.flat_level[element] = to;
        if to < from {
            self.flat_counts.revocations += 1;
            self.telemetry.incr("broker.revocations", 1);
        } else {
            self.flat_counts.restores += 1;
            self.telemetry.incr("broker.restores", 1);
        }
        if self.telemetry.is_enabled() {
            self.telemetry.event_with_detail(
                "broker.level",
                Some(self.slot),
                self.time,
                &[
                    ("element", element as f64),
                    ("from", f64::from(from)),
                    ("to", f64::from(to)),
                ],
                cause.as_str(),
            );
        }
    }
}

/// Declare a topology into a trace without a broker (flat mode): the same
/// `broker.element` / `broker.edge` events [`Broker::with_telemetry`]
/// emits, so the audit can replay legality for either arm.
fn declare(topo: &Topology, telemetry: &Recorder) {
    if !telemetry.is_enabled() {
        return;
    }
    for i in 0..topo.len() {
        if let Some(spec) = topo.spec(i) {
            telemetry.event_with_detail(
                "broker.element",
                None,
                0.0,
                &[
                    ("element", i as f64),
                    ("max_level", f64::from(spec.max_level)),
                    ("floor", f64::from(spec.floor)),
                ],
                &spec.name,
            );
        }
    }
    for e in topo.edges() {
        telemetry.event(
            "broker.edge",
            None,
            0.0,
            &[
                ("child", e.child as f64),
                ("provider", e.provider as f64),
                ("min_provider_level", f64::from(e.min_provider_level)),
            ],
        );
    }
    telemetry.gauge("broker.elements", topo.len() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::platform::Platform;
    use dpm_core::units::seconds;

    fn board() -> PamaBoard {
        PamaBoard::new(Platform::pama())
    }

    #[test]
    fn pama_topology_matches_the_element_constants() {
        let t = pama_topology().unwrap();
        assert_eq!(t.len(), ELEMENTS);
        assert_eq!(t.spec(EL_BUS).unwrap().name, "bus");
        assert_eq!(t.spec(EL_GAUGE).unwrap().name, "gauge");
        assert_eq!(t.spec(EL_WORKERS[0]).unwrap().name, "worker-1");
        assert_eq!(t.spec(EL_WORKERS[6]).unwrap().name, "worker-7");
        // Workers 1–4 hang off ring A, 5–7 off ring B.
        assert_eq!(t.providers_of(EL_WORKERS[3]), &[(EL_RING_A, 1)]);
        assert_eq!(t.providers_of(EL_WORKERS[4]), &[(EL_RING_B, 1)]);
        assert_eq!(t.providers_of(EL_GAUGE), &[(EL_SENSOR_BUS, 1)]);
    }

    #[test]
    fn broker_mode_cuts_dependent_rails_on_a_provider_fault() {
        let mut board = board();
        let mut rt = TopologyRuntime::new(TopologyMode::Broker, Recorder::disabled()).unwrap();
        let granted = rt
            .begin_slot(0, seconds(0.0), 7, false, &mut board)
            .unwrap();
        assert_eq!(granted, 7);
        assert!((1..8).all(|c| board.is_powered(c)));

        rt.fault(EL_RING_A, seconds(0.5), &mut board);
        // Chips 1–4 (ring A) lose their rails immediately and legally.
        assert!((1..5).all(|c| !board.is_powered(c)));
        assert!((5..8).all(|c| board.is_powered(c)));
        let t = pama_topology().unwrap();
        assert!(t.violation(rt.levels()).is_none());

        let granted = rt
            .begin_slot(1, seconds(3.6), 7, false, &mut board)
            .unwrap();
        assert_eq!(granted, 3, "only ring-B workers are servable");
        assert!(rt.stats().cascades >= 1);
        assert_eq!(rt.stats().mode, "broker");
    }

    #[test]
    fn flat_mode_keeps_children_powered_above_a_dead_provider() {
        let mut board = board();
        let mut rt = TopologyRuntime::new(TopologyMode::Flat, Recorder::disabled()).unwrap();
        let granted = rt
            .begin_slot(0, seconds(0.0), 7, false, &mut board)
            .unwrap();
        assert_eq!(granted, 7);

        rt.fault(EL_RING_A, seconds(0.5), &mut board);
        // The blind policy leaves chips 1–4 on their (dead) ring: powered,
        // drawing, serving nothing — and the level trace is illegal.
        assert!((1..5).all(|c| board.is_powered(c) && board.is_impaired(c)));
        assert!((5..8).all(|c| board.is_powered(c) && !board.is_impaired(c)));
        let t = pama_topology().unwrap();
        let (child, provider) = t.violation(rt.levels()).expect("flat violates legality");
        assert_eq!(provider, EL_RING_A);
        assert!(EL_WORKERS[..4].contains(&child));

        // Recovery clears the impairment at the next slot.
        rt.recover(EL_RING_A, seconds(3.0));
        rt.begin_slot(1, seconds(3.6), 7, false, &mut board)
            .unwrap();
        assert!((1..8).all(|c| !board.is_impaired(c)));
        assert!(t.violation(rt.levels()).is_none());
    }

    #[test]
    fn exhausted_governor_triggers_terminal_shutdown_once() {
        let mut board = board();
        let mut rt = TopologyRuntime::new(TopologyMode::Broker, Recorder::disabled()).unwrap();
        rt.begin_slot(0, seconds(0.0), 5, false, &mut board)
            .unwrap();
        let granted = rt.begin_slot(1, seconds(3.6), 5, true, &mut board).unwrap();
        assert_eq!(granted, 0);
        assert!(rt.is_terminal());
        assert!((1..8).all(|c| !board.is_powered(c)));
        assert_eq!(rt.stats().terminal_shutdowns, 1);
        // Final: later slots change nothing.
        let granted = rt.begin_slot(2, seconds(7.2), 5, true, &mut board).unwrap();
        assert_eq!(granted, 0);
        assert_eq!(rt.stats().terminal_shutdowns, 1);
    }

    #[test]
    fn gauge_goes_stale_when_its_provider_chain_faults() {
        for mode in [TopologyMode::Flat, TopologyMode::Broker] {
            let mut board = board();
            let mut rt = TopologyRuntime::new(mode, Recorder::disabled()).unwrap();
            rt.begin_slot(0, seconds(0.0), 3, false, &mut board)
                .unwrap();
            assert!(rt.gauge_powered(), "{mode:?}");
            rt.fault(EL_SENSOR_BUS, seconds(0.5), &mut board);
            assert!(!rt.gauge_powered(), "{mode:?}");
            rt.recover(EL_SENSOR_BUS, seconds(1.0));
            // Broker restores wait out dwell (1 slot); flat is back at the
            // next reconciliation.
            rt.begin_slot(1, seconds(3.6), 3, false, &mut board)
                .unwrap();
            rt.begin_slot(2, seconds(7.2), 3, false, &mut board)
                .unwrap();
            assert!(rt.gauge_powered(), "{mode:?}");
        }
    }

    #[test]
    fn blocked_demand_burns_the_bounded_retry_budget() {
        let mut board = board();
        let mut rt = TopologyRuntime::new(TopologyMode::Broker, Recorder::disabled()).unwrap();
        rt.begin_slot(0, seconds(0.0), 7, false, &mut board)
            .unwrap();
        rt.fault(EL_RING_A, seconds(0.5), &mut board);
        // Demand 7 with only 3 servable: overflow lands on ring-A workers
        // and retries until abandoned.
        for s in 1..32 {
            rt.begin_slot(s, seconds(3.6 * s as f64), 7, false, &mut board)
                .unwrap();
        }
        let stats = rt.stats();
        assert!(stats.retries > 0);
        assert!(stats.abandoned > 0);
        // Abandonment is bounded: traffic stopped well before 31 slots of
        // 5 blocked elements each.
        assert!(stats.retries < 60, "{}", stats.retries);
    }
}
