//! `campaign` — fault-injection survival campaigns: governor × fault-plan
//! matrices with survival metrics per point, plus a fleet mode that runs
//! a sharded struct-of-arrays board population instead of the governor
//! matrix.
//!
//! ```text
//! campaign                    # 8 seeds × 4 governor arms, 8 periods each
//! campaign --seeds 16         # more fault plans
//! campaign --periods 4        # shorter points
//! campaign --jobs 4           # fan points across 4 worker threads
//! DPM_JOBS=4 campaign         # same, via the environment
//! campaign --telemetry t.jsonl  # structured trace + wall-clock profile
//! campaign --fleet 125000     # 125k-board fleet campaign (10^6
//!                             # board-periods at the default 8 periods)
//! campaign --fleet 512 --master-seed 7  # different board population
//! campaign --topology         # flat vs broker power-tree arms under
//!                             # provider-targeting fault plans
//! campaign --topology --arm broker  # one arm only (CI audits this:
//!                             # the flat arm's trace is illegal by design)
//! ```
//!
//! Output is CSV on stdout (one row per point — or per shard in fleet
//! mode), byte-identical for any worker count; a timing summary goes to
//! stderr. Worker-count priority: `--jobs N`, then `DPM_JOBS`, then the
//! machine's available parallelism. `--telemetry PATH` writes the
//! deterministic JSONL trace to `PATH` and the wall-clock span profile to
//! `PATH.profile`; the trace is byte-identical across repeated runs and
//! worker counts. `--telemetry -` streams the trace to stdout instead
//! (profile suppressed, CSV moves to stderr), for piping into
//! `dpm-analyze audit -`.
//! Exit codes: 0 on success — including points where a safety-wrapped
//! governor degraded to its fallback (that is a *result*, recorded in the
//! `degradations` column, not an error) — 1 when a point fails outright
//! (the failing point emits an `error` CSV row and the remaining points
//! still run), 2 on a usage error.
//!
//! All the actual work lives in [`dpm_bench::campaign`] and
//! [`dpm_bench::fleet`]; this binary only parses arguments and routes the
//! output.

use dpm_bench::runner;
use dpm_bench::telemetry_out;
use dpm_bench::{campaign, fleet, topology};
use dpm_telemetry::Recorder;

fn usage() -> String {
    format!(
        "usage: campaign [--jobs N] [--seeds N] [--periods N] [--telemetry PATH]\n\
         \x20      campaign --fleet N [--master-seed S] [--jobs N] [--periods N] \
         [--telemetry PATH]\n\
         \x20      campaign --topology [--arm flat|broker] [--seeds N] [--jobs N] \
         [--periods N] [--telemetry PATH]\n\
         worker count: --jobs N, else ${}, else available parallelism",
        runner::JOBS_ENV,
    )
}

fn main() {
    let mut jobs_cli: Option<usize> = None;
    let mut seeds: u64 = campaign::DEFAULT_SEEDS;
    let mut periods: usize = campaign::DEFAULT_PERIODS;
    let mut telemetry_path: Option<String> = None;
    let mut fleet_boards: Option<usize> = None;
    let mut master_seed: u64 = fleet::DEFAULT_MASTER_SEED;
    let mut topology_mode = false;
    let mut topology_arm: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--telemetry" => match args.next() {
                Some(path) => telemetry_path = Some(path),
                None => {
                    eprintln!("--telemetry requires a path\n{}", usage());
                    std::process::exit(2);
                }
            },
            "--jobs" | "-j" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n >= 1 => jobs_cli = Some(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--seeds" => {
                let value = args.next().and_then(|v| v.parse::<u64>().ok());
                match value {
                    Some(n) if n >= 1 => seeds = n,
                    _ => {
                        eprintln!("--seeds needs a positive integer\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--periods" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n >= 1 => periods = n,
                    _ => {
                        eprintln!("--periods needs a positive integer\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--fleet" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n >= 1 => fleet_boards = Some(n),
                    _ => {
                        eprintln!("--fleet needs a positive board count\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--topology" => topology_mode = true,
            "--arm" => match args.next() {
                Some(arm) if topology::ARM_NAMES.contains(&arm.as_str()) => {
                    topology_arm = Some(arm);
                }
                _ => {
                    eprintln!("--arm needs one of: flat, broker\n{}", usage());
                    std::process::exit(2);
                }
            },
            "--master-seed" => {
                let value = args.next().and_then(|v| v.parse::<u64>().ok());
                match value {
                    Some(n) => master_seed = n,
                    None => {
                        eprintln!("--master-seed needs an integer\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                std::process::exit(2);
            }
        }
    }

    let jobs = runner::resolve_jobs(jobs_cli);
    // With `--telemetry -` the trace owns stdout; the CSV moves to stderr
    // so the stream stays a clean JSONL document for piping.
    let trace_on_stdout = telemetry_path
        .as_deref()
        .is_some_and(telemetry_out::to_stdout);

    if topology_arm.is_some() && !topology_mode {
        eprintln!("--arm only applies with --topology\n{}", usage());
        std::process::exit(2);
    }
    if topology_mode {
        if fleet_boards.is_some() {
            eprintln!("--topology and --fleet are mutually exclusive\n{}", usage());
            std::process::exit(2);
        }
        let telemetry = match telemetry_path {
            Some(_) => Recorder::enabled("topology"),
            None => Recorder::disabled(),
        };
        match topology::run_filtered(seeds, jobs, periods, topology_arm.as_deref(), &telemetry) {
            Ok(outcome) => {
                if trace_on_stdout {
                    eprint!("{}", outcome.csv);
                } else {
                    print!("{}", outcome.csv);
                }
                eprintln!("topology: {}", outcome.stats.summary());
                if let Some(path) = telemetry_path {
                    if let Err(e) = telemetry_out::write_outputs(&telemetry, &path) {
                        eprintln!("campaign: cannot write telemetry to {path}: {e}");
                        std::process::exit(1);
                    }
                }
                if outcome.failures > 0 {
                    eprintln!(
                        "topology: {} point(s) failed (see error rows)",
                        outcome.failures
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("campaign: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(boards) = fleet_boards {
        let telemetry = match telemetry_path {
            Some(_) => Recorder::enabled("fleet"),
            None => Recorder::disabled(),
        };
        match fleet::run_with(boards, jobs, periods, master_seed, &telemetry) {
            Ok(outcome) => {
                if trace_on_stdout {
                    eprint!("{}", outcome.csv);
                } else {
                    print!("{}", outcome.csv);
                }
                eprintln!(
                    "fleet: {} boards x {} periods = {} board-slots, \
                     {} survived ({:.1}%), {}",
                    outcome.boards,
                    periods,
                    outcome.board_slots,
                    outcome.survived,
                    100.0 * outcome.survival_fraction(),
                    outcome.stats.summary(),
                );
                if let Some(path) = telemetry_path {
                    if let Err(e) = telemetry_out::write_outputs(&telemetry, &path) {
                        eprintln!("campaign: cannot write telemetry to {path}: {e}");
                        std::process::exit(1);
                    }
                }
                if outcome.failures > 0 {
                    eprintln!(
                        "fleet: {} shard(s) failed (see error rows)",
                        outcome.failures
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("campaign: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let telemetry = match telemetry_path {
        Some(_) => Recorder::enabled("campaign"),
        None => Recorder::disabled(),
    };
    match campaign::run_with(seeds, jobs, periods, &telemetry) {
        Ok(outcome) => {
            if trace_on_stdout {
                eprint!("{}", outcome.csv);
            } else {
                print!("{}", outcome.csv);
            }
            eprintln!("campaign: {}", outcome.stats.summary());
            if let Some(path) = telemetry_path {
                if let Err(e) = telemetry_out::write_outputs(&telemetry, &path) {
                    eprintln!("campaign: cannot write telemetry to {path}: {e}");
                    std::process::exit(1);
                }
            }
            if outcome.failures > 0 {
                eprintln!(
                    "campaign: {} point(s) failed (see error rows)",
                    outcome.failures
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("campaign: {e}");
            std::process::exit(1);
        }
    }
}
