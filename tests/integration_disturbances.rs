//! Failure injection: §4.3's reason for existing. Supply faults, event
//! storms, noisy panels and mis-forecasts, all absorbed by the Algorithm 3
//! feedback loop.

use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_core::prelude::*;
use dpm_sim::prelude::*;
use dpm_workloads::scenarios;

fn proposed(platform: &Platform, s: &dpm_workloads::Scenario) -> DpmController {
    let a = experiments::initial_allocation(platform, s).unwrap();
    DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap()
}

fn base_sim(platform: &Platform, s: &dpm_workloads::Scenario, periods: usize) -> Simulation {
    Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(s.charging.clone())),
        Box::new(ScheduleGenerator::new(s.event_rates(platform))),
        s.initial_charge,
        SimConfig {
            periods,
            ..SimConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn supply_dropout_causes_bounded_undersupply() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut clean_gov = proposed(&platform, &s);
    let clean = base_sim(&platform, &s, 4).run(&mut clean_gov).unwrap();

    let mut faulty_gov = proposed(&platform, &s);
    let mut sim = base_sim(&platform, &s, 4);
    // Lose the panel entirely for most of one sunlit stretch.
    sim.schedule(
        seconds(57.6 + 2.0),
        Disturbance::SupplyScale {
            factor: 0.0,
            duration: seconds(20.0),
        },
    );
    let faulty = sim.run(&mut faulty_gov).unwrap();

    // The fault removes ~47 J of the ~540 J supply; the controller should
    // absorb it mostly by shaving the plan, not by browning out.
    assert!(faulty.offered < clean.offered);
    assert!(
        faulty.undersupplied < 0.15 * (clean.offered - faulty.offered) + 2.0,
        "undersupplied {} after losing {} J",
        faulty.undersupplied,
        clean.offered - faulty.offered
    );
}

#[test]
fn event_storm_is_worked_off_without_drops() {
    // Scale the nominal rate to 60% so the allocation has slack capacity;
    // a 25-event storm then drains over the following orbits.
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut gov = proposed(&platform, &s);
    let mut sim = Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(s.charging.clone())),
        Box::new(ScheduleGenerator::new(s.event_rates(&platform).scale(0.6))),
        s.initial_charge,
        SimConfig {
            periods: 4,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.schedule(seconds(30.0), Disturbance::EventBurst { count: 25 });
    let report = sim.run(&mut gov).unwrap();
    assert_eq!(report.dropped, 0, "{}", report.summary());
    // The storm's jobs eventually clear: final backlog small.
    let final_backlog = report.slots.last().unwrap().backlog;
    assert!(final_backlog <= 8, "backlog {final_backlog}");
}

#[test]
fn noisy_supply_degrades_gracefully() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut gov = proposed(&platform, &s);
    let report = Simulation::new(
        platform.clone(),
        Box::new(NoisySource::new(
            TraceSource::new(s.charging.clone()),
            0.25,
            platform.tau,
            3,
        )),
        Box::new(ScheduleGenerator::new(s.event_rates(&platform))),
        s.initial_charge,
        SimConfig {
            periods: 6,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run(&mut gov)
    .unwrap();
    // ±25% noise on the forecast: waste and shortfall stay a small share.
    assert!(
        report.wasted < 0.12 * report.offered,
        "{}",
        report.summary()
    );
    assert!(
        report.undersupplied < 0.12 * report.offered,
        "{}",
        report.summary()
    );
}

#[test]
fn event_rate_misforecast_is_absorbed() {
    // Reality delivers 60% more events than the schedule the allocation
    // was computed from.
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut gov = proposed(&platform, &s);
    let hot_rates = s.event_rates(&platform).scale(1.6);
    let report = Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(s.charging.clone())),
        Box::new(ScheduleGenerator::new(hot_rates)),
        s.initial_charge,
        SimConfig {
            periods: 4,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run(&mut gov)
    .unwrap();
    // Energy is conserved regardless; the extra events queue up but
    // nothing is dropped and the battery never violates its window.
    assert_eq!(report.dropped, 0);
    assert!(report.final_battery >= platform.battery.c_min.value() - 1e-9);
    for slot in &report.slots {
        assert!(slot.battery <= platform.battery.c_max.value() + 1e-9);
    }
}

#[test]
fn back_to_back_disturbances_keep_battery_in_window() {
    let platform = Platform::pama();
    let s = scenarios::scenario_two();
    let mut gov = proposed(&platform, &s);
    let mut sim = base_sim(&platform, &s, 6);
    sim.schedule(
        seconds(20.0),
        Disturbance::SupplyScale {
            factor: 0.5,
            duration: seconds(30.0),
        },
    );
    sim.schedule(seconds(80.0), Disturbance::EventBurst { count: 15 });
    sim.schedule(
        seconds(150.0),
        Disturbance::SupplyScale {
            factor: 1.5,
            duration: seconds(25.0),
        },
    );
    sim.schedule(seconds(200.0), Disturbance::EventBurst { count: 15 });
    let report = sim.run(&mut gov).unwrap();
    for slot in &report.slots {
        assert!(
            slot.battery >= platform.battery.c_min.value() - 1e-6
                && slot.battery <= platform.battery.c_max.value() + 1e-6,
            "slot {}: battery {}",
            slot.slot,
            slot.battery
        );
    }
}

#[test]
fn static_governor_suffers_more_from_the_same_fault() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();

    let mut gov = proposed(&platform, &s);
    let mut sim = base_sim(&platform, &s, 4);
    sim.schedule(
        seconds(60.0),
        Disturbance::SupplyScale {
            factor: 0.0,
            duration: seconds(20.0),
        },
    );
    let rp = sim.run(&mut gov).unwrap();

    let mut statik = dpm_baselines::StaticGovernor::full_power(&platform).unwrap();
    let mut sim = base_sim(&platform, &s, 4);
    sim.schedule(
        seconds(60.0),
        Disturbance::SupplyScale {
            factor: 0.0,
            duration: seconds(20.0),
        },
    );
    let rs = sim.run(&mut statik).unwrap();

    assert!(rp.undersupplied < rs.undersupplied);
    assert!(rp.wasted < rs.wasted);
}
