//! Strongly-typed physical quantities used throughout the power-management
//! stack.
//!
//! The paper's algorithms mix seconds, watts, joules, hertz and volts in
//! closed-form expressions (Eqs. 1–18); carrying the units in the type system
//! catches transcription mistakes (e.g. confusing a power allocation with an
//! energy trajectory) at compile time instead of in a simulation trace.
//!
//! All quantities are thin wrappers over `f64` with the arithmetic that is
//! physically meaningful:
//!
//! * same-unit `+`/`-`, scalar `*`/`/`, same-unit `/` yielding a plain ratio,
//! * the cross-unit products the models need
//!   (`Watts × Seconds = Joules`, `Joules / Seconds = Watts`, …).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $ctor:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw magnitude in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True when the magnitude is a finite number.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Compare with a tolerance, for tests and convergence checks.
            #[inline]
            pub fn approx_eq(self, other: Self, tol: f64) -> bool {
                (self.0 - other.0).abs() <= tol
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Same-unit division yields a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        /// Free-function constructor, e.g. `watts(2.36)`.
        #[inline]
        pub const fn $ctor(value: f64) -> $name {
            $name(value)
        }
    };
}

quantity!(
    /// A duration or point in simulated time, in seconds.
    Seconds,
    "s",
    seconds
);
quantity!(
    /// Instantaneous power, in watts.
    Watts,
    "W",
    watts
);
quantity!(
    /// An amount of energy, in joules.
    Joules,
    "J",
    joules
);
quantity!(
    /// A clock frequency, in hertz.
    Hertz,
    "Hz",
    hertz
);
quantity!(
    /// A supply voltage, in volts.
    Volts,
    "V",
    volts
);

impl Hertz {
    /// Construct from a megahertz magnitude (the paper quotes 20/40/80 MHz).
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1.0e6)
    }

    /// Magnitude in megahertz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.0 / 1.0e6
    }
}

impl Watts {
    /// Construct from a milliwatt magnitude (datasheet numbers are in mW).
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Watts(mw * 1.0e-3)
    }

    /// Magnitude in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1.0e3
    }
}

impl Joules {
    /// Construct from a watt-hour magnitude (battery capacities are usually
    /// specified in Wh).
    #[inline]
    pub const fn from_watt_hours(wh: f64) -> Self {
        Joules(wh * 3600.0)
    }
}

// --- Cross-unit arithmetic -------------------------------------------------

/// `power × time = energy`
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `time × power = energy`
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `energy ÷ time = power`
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `energy ÷ power = time`
impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// Cycle count at a given frequency over a duration: `f × t` (dimensionless
/// count of clock cycles).
impl Mul<Seconds> for Hertz {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

/// Ordering helper: quantities are `f64`-backed, so `Ord` is not derivable.
/// `total_cmp` gives a total order that treats NaN consistently; algorithms
/// that sort by a quantity should go through this.
pub fn total_cmp<Q: Into<f64> + Copy>(a: Q, b: Q) -> std::cmp::Ordering {
    let (a, b): (f64, f64) = (a.into(), b.into());
    a.total_cmp(&b)
}

macro_rules! into_f64 {
    ($($name:ident),*) => {
        $(impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        })*
    };
}

into_f64!(Seconds, Watts, Joules, Hertz, Volts);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = watts(2.0) * seconds(3.0);
        assert_eq!(e, joules(6.0));
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_eq!(joules(6.0) / seconds(3.0), watts(2.0));
    }

    #[test]
    fn energy_over_power_is_time() {
        assert_eq!(joules(6.0) / watts(2.0), seconds(3.0));
    }

    #[test]
    fn same_unit_ratio_is_dimensionless() {
        let r: f64 = watts(6.0) / watts(2.0);
        assert_eq!(r, 3.0);
    }

    #[test]
    fn megahertz_roundtrip() {
        let f = Hertz::from_mhz(80.0);
        assert_eq!(f.mhz(), 80.0);
        assert_eq!(f.value(), 80.0e6);
    }

    #[test]
    fn milliwatts_roundtrip() {
        let p = Watts::from_milliwatts(546.0);
        assert!((p.value() - 0.546).abs() < 1e-12);
        assert!((p.milliwatts() - 546.0).abs() < 1e-9);
    }

    #[test]
    fn watt_hours() {
        assert_eq!(Joules::from_watt_hours(1.0), joules(3600.0));
    }

    #[test]
    fn clamp_and_minmax() {
        assert_eq!(watts(5.0).clamp(watts(0.0), watts(2.0)), watts(2.0));
        assert_eq!(watts(-1.0).max(Watts::ZERO), Watts::ZERO);
        assert_eq!(watts(-1.0).min(Watts::ZERO), watts(-1.0));
    }

    #[test]
    fn cycles_from_frequency_and_time() {
        let cycles = Hertz::from_mhz(20.0) * seconds(4.8);
        assert_eq!(cycles, 96.0e6);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = [joules(1.0), joules(2.5)].into_iter().sum();
        assert_eq!(total, joules(3.5));
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", watts(1.2345)), "1.23 W");
        assert_eq!(format!("{}", seconds(4.8)), "4.8 s");
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(joules(1.0).approx_eq(joules(1.0 + 1e-12), 1e-9));
        assert!(!joules(1.0).approx_eq(joules(1.1), 1e-9));
    }

    #[test]
    fn neg_and_assign_ops() {
        let mut e = joules(2.0);
        e += joules(1.0);
        e -= joules(0.5);
        assert_eq!(e, joules(2.5));
        assert_eq!(-e, joules(-2.5));
    }
}
