//! Shared `--telemetry <path>` output routine for the harness binaries.
//!
//! The split matters: the **trace** (`<path>`, JSONL of
//! [`dpm_telemetry::TraceLine`]) is deterministic and byte-comparable
//! across runs and `--jobs` settings — CI diffs it. The **profile**
//! (`<path>.profile`, JSONL of [`dpm_telemetry::ProfileLine`]) carries the
//! wall-clock span timings and is explicitly non-reproducible. The stderr
//! summary renders both, with the wall-clock section clearly labeled.

use dpm_telemetry::Recorder;

/// Write the deterministic trace to `path` and the wall-clock profile to
/// `<path>.profile`, then print the human summary to stderr. Does nothing
/// for a disabled recorder.
///
/// # Errors
/// Propagates [`std::io::Error`] when either file cannot be written.
pub fn write_outputs(recorder: &Recorder, path: &str) -> Result<(), std::io::Error> {
    if !recorder.is_enabled() {
        return Ok(());
    }
    std::fs::write(path, recorder.to_jsonl())?;
    std::fs::write(format!("{path}.profile"), recorder.profile_jsonl())?;
    eprint!("{}", recorder.summary());
    eprintln!("telemetry: trace -> {path}, wall-clock profile -> {path}.profile");
    Ok(())
}
