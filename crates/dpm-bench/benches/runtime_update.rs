//! Tables 3/5 bench: Algorithm 3's redistribution and the full controller
//! decision step — the code that runs on the controller PIM every τ, so
//! its cost bounds how small τ could be made.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_bench::experiments;
use dpm_core::governor::{Governor, SlotObservation};
use dpm_core::platform::Platform;
use dpm_core::runtime::{redistribute, DpmController};
use dpm_core::units::{joules, seconds, watts, Seconds};
use dpm_workloads::scenarios;
use std::hint::black_box;

fn bench_tables_3_5(c: &mut Criterion) {
    let platform = Platform::pama();
    for s in scenarios::all() {
        let (trace, report) =
            experiments::table3_5(&platform, &s, experiments::DEFAULT_PERIODS).unwrap();
        println!(
            "[table3/5] {}: {} slots, {}",
            s.name,
            trace.len(),
            report.summary()
        );
    }

    let mut group = c.benchmark_group("runtime/full_trace");
    for s in scenarios::all() {
        group.bench_with_input(BenchmarkId::from_parameter(&s.name), &s, |b, s| {
            b.iter(|| {
                black_box(experiments::table3_5(
                    &platform,
                    s,
                    experiments::DEFAULT_PERIODS,
                ))
            })
        });
    }
    group.finish();
}

fn bench_redistribute(c: &mut Criterion) {
    let limits = Platform::pama().battery;
    let bounds = (watts(0.0528), watts(4.368));
    let mut group = c.benchmark_group("runtime/algorithm3");
    for slots in [12usize, 96, 768] {
        let plan: Vec<f64> = (0..slots).map(|i| 0.5 + (i % 5) as f64 * 0.4).collect();
        let charging: Vec<f64> = (0..slots)
            .map(|i| if i < slots / 2 { 2.36 } else { 0.0 })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, _| {
            b.iter(|| {
                let mut p = plan.clone();
                black_box(redistribute(
                    &mut p,
                    &charging,
                    seconds(4.8),
                    joules(8.0),
                    limits,
                    joules(2.4),
                    bounds,
                ))
            })
        });
    }
    group.finish();
}

fn bench_controller_step(c: &mut Criterion) {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let alloc = experiments::initial_allocation(&platform, &s).unwrap();
    c.bench_function("runtime/controller_decide", |b| {
        let mut governor =
            DpmController::new(platform.clone(), &alloc, s.charging.clone()).unwrap();
        let mut slot = 0u64;
        b.iter(|| {
            let obs = SlotObservation {
                slot,
                time: Seconds(slot as f64 * 4.8),
                battery: joules(8.0),
                used_last: joules(5.0),
                supplied_last: joules(6.0),
                backlog: 2,
            };
            slot += 1;
            black_box(governor.decide(&obs))
        })
    });
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_tables_3_5, bench_redistribute, bench_controller_step
}
criterion_main!(benches);
