//! Failure injection: §4.3's reason for existing. Supply faults, event
//! storms, noisy panels and mis-forecasts, all absorbed by the Algorithm 3
//! feedback loop — plus the graceful-degradation contract of the
//! [`SafetyGovernor`] wrapper under the harder §9 fault classes
//! (charging dropouts, processor fail-stops, replan failures).

use dpm_bench::experiments;
use dpm_core::platform::Platform;
use dpm_core::prelude::*;
use dpm_sim::prelude::*;
use dpm_workloads::scenarios;

fn proposed(platform: &Platform, s: &dpm_workloads::Scenario) -> DpmController {
    let a = experiments::initial_allocation(platform, s).unwrap();
    DpmController::new(platform.clone(), &a, s.charging.clone()).unwrap()
}

fn base_sim(platform: &Platform, s: &dpm_workloads::Scenario, periods: usize) -> Simulation {
    Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(s.charging.clone())),
        Box::new(ScheduleGenerator::new(s.event_rates(platform))),
        s.initial_charge,
        SimConfig {
            periods,
            ..SimConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn supply_dropout_causes_bounded_undersupply() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut clean_gov = proposed(&platform, &s);
    let clean = base_sim(&platform, &s, 4).run(&mut clean_gov).unwrap();

    let mut faulty_gov = proposed(&platform, &s);
    let mut sim = base_sim(&platform, &s, 4);
    // Lose the panel entirely for most of one sunlit stretch.
    sim.schedule(
        seconds(57.6 + 2.0),
        Disturbance::SupplyScale {
            factor: 0.0,
            duration: seconds(20.0),
        },
    );
    let faulty = sim.run(&mut faulty_gov).unwrap();

    // The fault removes ~47 J of the ~540 J supply; the controller should
    // absorb it mostly by shaving the plan, not by browning out.
    assert!(faulty.offered < clean.offered);
    assert!(
        faulty.undersupplied < 0.15 * (clean.offered - faulty.offered) + 2.0,
        "undersupplied {} after losing {} J",
        faulty.undersupplied,
        clean.offered - faulty.offered
    );
}

#[test]
fn event_storm_is_worked_off_without_drops() {
    // Scale the nominal rate to 60% so the allocation has slack capacity;
    // a 25-event storm then drains over the following orbits.
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut gov = proposed(&platform, &s);
    let mut sim = Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(s.charging.clone())),
        Box::new(ScheduleGenerator::new(s.event_rates(&platform).scale(0.6))),
        s.initial_charge,
        SimConfig {
            periods: 4,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.schedule(seconds(30.0), Disturbance::EventBurst { count: 25 });
    let report = sim.run(&mut gov).unwrap();
    assert_eq!(report.dropped, 0, "{}", report.summary());
    // The storm's jobs eventually clear: final backlog small.
    let final_backlog = report.slots.last().unwrap().backlog;
    assert!(final_backlog <= 8, "backlog {final_backlog}");
}

#[test]
fn noisy_supply_degrades_gracefully() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut gov = proposed(&platform, &s);
    let report = Simulation::new(
        platform.clone(),
        Box::new(NoisySource::new(
            TraceSource::new(s.charging.clone()),
            0.25,
            platform.tau,
            3,
        )),
        Box::new(ScheduleGenerator::new(s.event_rates(&platform))),
        s.initial_charge,
        SimConfig {
            periods: 6,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run(&mut gov)
    .unwrap();
    // ±25% noise on the forecast: waste and shortfall stay a small share.
    assert!(
        report.wasted < 0.12 * report.offered,
        "{}",
        report.summary()
    );
    assert!(
        report.undersupplied < 0.12 * report.offered,
        "{}",
        report.summary()
    );
}

#[test]
fn event_rate_misforecast_is_absorbed() {
    // Reality delivers 60% more events than the schedule the allocation
    // was computed from.
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut gov = proposed(&platform, &s);
    let hot_rates = s.event_rates(&platform).scale(1.6);
    let report = Simulation::new(
        platform.clone(),
        Box::new(TraceSource::new(s.charging.clone())),
        Box::new(ScheduleGenerator::new(hot_rates)),
        s.initial_charge,
        SimConfig {
            periods: 4,
            ..SimConfig::default()
        },
    )
    .unwrap()
    .run(&mut gov)
    .unwrap();
    // Energy is conserved regardless; the extra events queue up but
    // nothing is dropped and the battery never violates its window.
    assert_eq!(report.dropped, 0);
    assert!(report.final_battery >= platform.battery.c_min.value() - 1e-9);
    for slot in &report.slots {
        assert!(slot.battery <= platform.battery.c_max.value() + 1e-9);
    }
}

#[test]
fn back_to_back_disturbances_keep_battery_in_window() {
    let platform = Platform::pama();
    let s = scenarios::scenario_two();
    let mut gov = proposed(&platform, &s);
    let mut sim = base_sim(&platform, &s, 6);
    sim.schedule(
        seconds(20.0),
        Disturbance::SupplyScale {
            factor: 0.5,
            duration: seconds(30.0),
        },
    );
    sim.schedule(seconds(80.0), Disturbance::EventBurst { count: 15 });
    sim.schedule(
        seconds(150.0),
        Disturbance::SupplyScale {
            factor: 1.5,
            duration: seconds(25.0),
        },
    );
    sim.schedule(seconds(200.0), Disturbance::EventBurst { count: 15 });
    let report = sim.run(&mut gov).unwrap();
    for slot in &report.slots {
        assert!(
            slot.battery >= platform.battery.c_min.value() - 1e-6
                && slot.battery <= platform.battery.c_max.value() + 1e-6,
            "slot {}: battery {}",
            slot.slot,
            slot.battery
        );
    }
}

#[test]
fn static_governor_suffers_more_from_the_same_fault() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();

    let mut gov = proposed(&platform, &s);
    let mut sim = base_sim(&platform, &s, 4);
    sim.schedule(
        seconds(60.0),
        Disturbance::SupplyScale {
            factor: 0.0,
            duration: seconds(20.0),
        },
    );
    let rp = sim.run(&mut gov).unwrap();

    let mut statik = dpm_baselines::StaticGovernor::full_power(&platform).unwrap();
    let mut sim = base_sim(&platform, &s, 4);
    sim.schedule(
        seconds(60.0),
        Disturbance::SupplyScale {
            factor: 0.0,
            duration: seconds(20.0),
        },
    );
    let rs = sim.run(&mut statik).unwrap();

    assert!(rp.undersupplied < rs.undersupplied);
    assert!(rp.wasted < rs.wasted);
}

/// The acceptance demonstration for the safety wrapper: under an extended
/// charging dropout plus an event storm, a moderate static governor drains
/// the battery to the floor and browns out — while the *same* governor
/// wrapped in a [`SafetyGovernor`] sheds load inside the guard band and
/// finishes the mission with zero undersupply, never touching `C_min`.
#[test]
fn safety_governor_survives_a_dropout_the_bare_governor_does_not() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    // A point drawing ~1.12 W (≈ mean supply): sustainable in the nominal
    // orbit, fatal across a 60 s charging dropout with a busy board.
    let point = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));
    let inject = |sim: &mut Simulation| {
        // The dropout starts where the eclipse would, stretching the dark
        // stretch to 60 s (it swallows the next sunlit phase), and the
        // burst keeps the workers busy the whole way down.
        sim.schedule(
            seconds(28.8),
            Disturbance::ChargingDropout {
                duration: seconds(60.0),
            },
        );
        sim.schedule(seconds(30.0), Disturbance::EventBurst { count: 60 });
    };

    let mut bare = dpm_baselines::StaticGovernor::new(point).unwrap();
    let mut sim = base_sim(&platform, &s, 4);
    inject(&mut sim);
    let r_bare = sim.run(&mut bare).unwrap();
    assert!(
        r_bare.undersupplied > 1.0,
        "the bare governor must brown out for this demo to mean anything; \
         undersupplied {}",
        r_bare.undersupplied
    );
    let bare_deepest = r_bare
        .slots
        .iter()
        .map(|sl| sl.battery)
        .fold(f64::INFINITY, f64::min);
    assert!(
        bare_deepest <= platform.battery.c_min.value() + 0.1,
        "bare run rides the floor, got {bare_deepest}"
    );

    // Guard band sized to one full-draw slot (~5.4 J) plus headroom, and a
    // shed step deep enough to jump straight to the standby floor.
    let config = SafetyConfig {
        guard_band: joules(6.0),
        recover_band: joules(8.0),
        shed_step: 64,
        max_replan_failures: 3,
        backoff_slots: 1,
    };
    let inner = dpm_baselines::StaticGovernor::new(point).unwrap();
    let mut safe = SafetyGovernor::new(inner, &platform, config).unwrap();
    let mut sim = base_sim(&platform, &s, 4);
    inject(&mut sim);
    let r_safe = sim.run(&mut safe).unwrap();

    assert_eq!(
        r_safe.undersupplied, 0.0,
        "the wrapped governor must never brown out"
    );
    for slot in &r_safe.slots {
        assert!(
            slot.battery > platform.battery.c_min.value() + 1e-9,
            "slot {}: battery {} touched C_min",
            slot.slot,
            slot.battery
        );
    }
    assert!(
        safe.degradation_count() > 0,
        "survival must come from recorded shed/recover transitions"
    );
    assert!(
        safe.trace()
            .iter()
            .any(|r| matches!(r.transition, SafetyTransition::Shed { .. })),
        "{:?}",
        safe.trace()
    );
}

/// A replan failure mid-run degrades to the static fallback and the run
/// completes with a recorded transition — it does not abort.
#[test]
fn replan_failures_fall_back_instead_of_aborting() {
    /// A governor whose planner dies for good at slot 6.
    struct Flaky {
        point: OperatingPoint,
    }
    impl Governor for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }
        fn decide(&mut self, o: &SlotObservation) -> Result<OperatingPoint, DpmError> {
            if o.slot >= 6 {
                Err(DpmError::EmptyScheduleWindow)
            } else {
                Ok(self.point)
            }
        }
    }

    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let point = OperatingPoint::new(3, Hertz::from_mhz(40.0), volts(3.3));

    // Bare: the sim aborts with the governor's error.
    let mut bare = Flaky { point };
    assert!(base_sim(&platform, &s, 2).run(&mut bare).is_err());

    // Wrapped: bounded retries, then the static fallback serves the rest.
    let inner = Flaky { point };
    let mut safe = SafetyGovernor::with_defaults(inner, &platform).unwrap();
    let report = base_sim(&platform, &s, 2).run(&mut safe).unwrap();
    assert_eq!(report.slots.len(), 24, "the run completed every slot");
    assert!(
        safe.trace()
            .iter()
            .any(|r| matches!(r.transition, SafetyTransition::FallbackEngaged { .. })),
        "{:?}",
        safe.trace()
    );
}

/// Cumulative undersupply in the slot trace is monotone non-decreasing and
/// lands exactly on the report total, under stacked charging dropouts.
#[test]
fn undersupply_trace_is_monotone_under_dropouts() {
    let platform = Platform::pama();
    let s = scenarios::scenario_one();
    let mut statik = dpm_baselines::StaticGovernor::full_power(&platform).unwrap();
    let mut sim = base_sim(&platform, &s, 4);
    for k in 0..4u64 {
        sim.schedule(
            seconds(10.0 + 50.0 * k as f64),
            Disturbance::ChargingDropout {
                duration: seconds(15.0 + 5.0 * k as f64),
            },
        );
    }
    let report = sim.run(&mut statik).unwrap();
    assert!(
        report.undersupplied > 0.0,
        "full power under dropouts starves"
    );
    let mut prev = 0.0;
    for slot in &report.slots {
        assert!(
            slot.undersupplied + 1e-12 >= prev,
            "slot {}: cumulative undersupply went backwards ({} < {})",
            slot.slot,
            slot.undersupplied,
            prev
        );
        prev = slot.undersupplied;
    }
    let last = report.slots.last().unwrap().undersupplied;
    assert!(
        (last - report.undersupplied).abs() < 1e-9,
        "trace total {last} != report total {}",
        report.undersupplied
    );
}
