//! Trace analysis over the deterministic telemetry layer.
//!
//! [`dpm_telemetry`] writes schema-v1 JSONL traces; this crate reads
//! them back and turns them into actionable checks (see DESIGN.md §10
//! and docs/TRACE_SCHEMA.md):
//!
//! - [`model::Trace`] — parse + index a trace document;
//! - [`audit`] — replay a trace against the battery-window, energy-
//!   conservation, safety-legality, and undersupply-monotonicity
//!   invariants, pinpointing the first violation as `(scope, seq, slot)`;
//!   since PR 9 the engine is incremental ([`AuditState`]) so the same
//!   invariants gate live `dpm-serve` sessions line-by-line;
//! - [`diff`] — first-divergence comparison between two traces with
//!   decoded context (the determinism gate);
//! - [`summary`] — per-run report: activity counters, safety transition
//!   census, histogram quantiles, ASCII battery trajectories;
//! - [`bench`] — condense wall-clock `.profile` documents into committed
//!   `BENCH_<name>.json` baselines and check fresh profiles against them;
//! - [`fleet`] — aggregate the per-shard `fleet.*` metrics of a
//!   `campaign --fleet` trace into one population report: survival
//!   fraction, interpolated battery-floor percentiles, shed census;
//! - [`rollup`] — streaming fold of a line stream into windowed
//!   time-series (counter rates, gauge last-values, histogram
//!   quantiles per N-slot window), deterministic in sim-time — the
//!   engine behind the `dpm-serve` metrics snapshot;
//! - [`profile`] — hierarchical span-tree analysis of `.profile`
//!   documents: self-time vs total-time attribution, flamegraph
//!   collapse, and a committed-baseline check.
//!
//! The `dpm-analyze` binary in `dpm-bench` fronts these as commands.
//!
//! Like the telemetry layer it reads, this crate must never take down a
//! caller on hostile input: non-test code is panic-free (enforced by
//! `ci/forbid_panics.sh`) and every failure is a typed [`TraceError`].

#![warn(missing_docs)]

pub mod audit;
pub mod bench;
pub mod diff;
mod error;
pub mod fleet;
pub mod model;
pub mod profile;
pub mod rollup;
pub mod summary;

pub use audit::{audit, AuditConfig, AuditReport, AuditState, Violation};
pub use bench::{check as bench_check, BenchBaseline, BenchSpan, Regression, BENCH_SCHEMA};
pub use diff::{first_divergence, Divergence};
pub use error::TraceError;
pub use fleet::{render as render_fleet, summarize as summarize_fleet, FleetSummary};
pub use model::{split_scoped, Trace};
pub use profile::{render as render_profile, SpanNode};
pub use rollup::{Rollup, RollupWindow};
pub use summary::{quantile, render as render_summary};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Trace>();
        assert_send_sync::<AuditReport>();
        assert_send_sync::<TraceError>();
        assert_send_sync::<BenchBaseline>();
        assert_send_sync::<Divergence>();
    }
}
