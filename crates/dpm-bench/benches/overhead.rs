//! Ablation bench: sensitivity of the Algorithm 2 plan to the switch
//! overheads `OH_n`/`OH_f` (§4.2 lines 14–22). Sweeps the overhead from
//! the paper's zero up to prohibitive, reporting switch counts and total
//! jobs at each level alongside the planning cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_bench::experiments;
use dpm_core::params::ParameterScheduler;
use dpm_core::platform::{Platform, SwitchOverheads};
use dpm_core::units::joules;
use dpm_workloads::scenarios;
use std::hint::black_box;

fn bench_overhead_sweep(c: &mut Criterion) {
    let s = scenarios::scenario_one();
    let base = Platform::pama();
    let alloc = experiments::initial_allocation(&base, &s).unwrap();

    println!("[overhead] OH (J)  switches  jobs/period  energy (J)");
    let mut group = c.benchmark_group("overhead/plan");
    for oh in [0.0f64, 0.05, 0.2, 0.5, 1.0, 5.0] {
        let mut platform = base.clone();
        platform.overheads = SwitchOverheads {
            processor_change: joules(oh),
            frequency_change: joules(2.0 * oh),
        };
        let scheduler = ParameterScheduler::new(platform.clone()).unwrap();
        let plan = scheduler
            .plan(&alloc.allocation, &s.charging, s.initial_charge)
            .unwrap();
        println!(
            "[overhead] {:>6.2}  {:>8}  {:>11.2}  {:>9.2}",
            oh,
            plan.switch_count(),
            plan.total_jobs(&platform),
            plan.total_energy(&platform).value()
        );
        group.bench_with_input(BenchmarkId::from_parameter(oh), &platform, |b, p| {
            let sched = ParameterScheduler::new(p.clone()).unwrap();
            b.iter(|| black_box(sched.plan(&alloc.allocation, &s.charging, s.initial_charge)))
        });
    }
    group.finish();
}

fn bench_update_period(c: &mut Criterion) {
    // Ablation: Algorithm 3 accuracy vs. τ — finer slots react faster but
    // cost more controller work. Measure the planning cost at several
    // resolutions (the accuracy side is covered by the integration tests).
    let base = Platform::pama();
    let mut group = c.benchmark_group("overhead/update_period");
    for divide in [1usize, 2, 4, 8] {
        let mut platform = base.clone();
        platform.tau = dpm_core::units::seconds(4.8 / divide as f64);
        let s = scenarios::scenario_one();
        let charging = s.charging.resample(platform.tau).unwrap();
        let demand = s.use_power.resample(platform.tau).unwrap();
        let problem = dpm_core::alloc::AllocationProblem {
            charging: charging.clone(),
            demand,
            initial_charge: s.initial_charge,
            limits: platform.battery,
            p_floor: platform.power.all_standby(),
            p_ceiling: platform.board_power(platform.workers(), platform.f_max()),
        };
        let alloc = dpm_core::alloc::InitialAllocator::new(problem)
            .unwrap()
            .compute()
            .unwrap();
        let scheduler = ParameterScheduler::new(platform.clone()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(12 * divide), &divide, |b, _| {
            b.iter(|| black_box(scheduler.plan(&alloc.allocation, &charging, s.initial_charge)))
        });
    }
    group.finish();
}

/// Short measurement windows: these benches exist to track regressions and
/// print experiment logs, not to resolve microsecond noise.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_overhead_sweep, bench_update_period
}
criterion_main!(benches);
