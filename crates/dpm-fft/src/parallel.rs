//! Fork-join parallel FFT — the Fig. 2 task graph made concrete.
//!
//! The paper's applications are "parallel applications with initial and
//! final stages": a serial scatter `S`, `n` parallel tasks `T1…Tn`, and a
//! serial gather `E`. For the FORTE FFT we realize that shape with the
//! classic four-step (Bailey) decomposition of an `N = R×C` transform:
//!
//! 1. **S** (serial): scatter the input into `C` columns;
//! 2. **T** (parallel): `C` independent length-`R` FFTs + twiddle multiply,
//!    then after a serial transpose, `R` independent length-`C` FFTs;
//! 3. **E** (serial): gather the output in natural order.
//!
//! Index algebra, with `j = r·C + c` and `k = p + R·q`:
//!
//! ```text
//! X[p + Rq] = Σ_c W_N^{cp} · W_C^{cq} · (Σ_r x[rC + c] · W_R^{rp})
//! ```
//!
//! Host-side parallelism uses `crossbeam::scope` with one thread per
//! simulated worker — a direct transcription of the task graph rather than
//! a work-stealing pool, per DESIGN.md §5.

use crate::fft::{Direction, FixedFft};
use crate::fixed::CQ15;
use crate::twiddle::TwiddleTable;
use std::time::Instant;

/// The Fig. 2 task-graph timing breakdown from one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTimes {
    /// Serial scatter + transpose + gather wall time (seconds).
    pub serial: f64,
    /// Parallel stage wall time (seconds).
    pub parallel: f64,
}

impl StageTimes {
    /// Empirical serial fraction `Ts/Tt` of this run.
    pub fn serial_fraction(&self) -> f64 {
        self.serial / (self.serial + self.parallel).max(1e-12)
    }
}

/// Fork-join FFT executor for a fixed size and worker count.
#[derive(Debug)]
pub struct ForkJoinFft {
    n: usize,
    rows: usize,
    cols: usize,
    row_fft: FixedFft,
    col_fft: FixedFft,
    twiddles: TwiddleTable,
    workers: usize,
}

impl ForkJoinFft {
    /// Plan a transform of size `n` (power of two ≥ 4) on `workers ≥ 1`
    /// threads. The factorization picks `R` as the largest power of two
    /// `≤ √N`, so both sub-transforms stay near-square.
    pub fn new(n: usize, workers: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 4, "size must be 2^k ≥ 4");
        assert!(workers >= 1, "at least one worker");
        let half_bits = n.trailing_zeros() / 2;
        let rows = 1usize << half_bits;
        let cols = n / rows;
        Self {
            n,
            rows,
            cols,
            row_fft: FixedFft::new(rows),
            col_fft: FixedFft::new(cols),
            twiddles: TwiddleTable::new(n),
            workers,
        }
    }

    /// Transform size.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// The `(R, C)` factorization in use.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Forward transform (scaled by `1/N`, same convention as
    /// [`FixedFft`]), returning the per-stage wall times.
    pub fn transform(&self, data: &mut [CQ15]) -> StageTimes {
        assert_eq!(data.len(), self.n, "buffer length must equal planned size");
        let (r, c) = (self.rows, self.cols);

        // --- S: scatter into columns (serial) ---------------------------
        let t0 = Instant::now();
        let mut columns: Vec<Vec<CQ15>> = (0..c)
            .map(|col| (0..r).map(|row| data[row * c + col]).collect())
            .collect();
        let mut serial = t0.elapsed().as_secs_f64();

        // --- T, first half: C length-R FFTs + twiddles (parallel) -------
        let t1 = Instant::now();
        self.for_each_parallel(&mut columns, |col_idx, column| {
            self.row_fft.transform(column, Direction::Forward);
            // W_N^{c·p} twiddle after the first sub-transform.
            for (p, v) in column.iter_mut().enumerate() {
                let k = (col_idx * p) % self.n;
                let w = self.full_twiddle(k);
                *v = v.sat_mul(w);
            }
        });
        let mut parallel = t1.elapsed().as_secs_f64();

        // --- serial transpose: rows[p][c] = columns[c][p] ----------------
        let t2 = Instant::now();
        let mut rows_buf: Vec<Vec<CQ15>> = (0..r)
            .map(|p| (0..c).map(|col| columns[col][p]).collect())
            .collect();
        serial += t2.elapsed().as_secs_f64();

        // --- T, second half: R length-C FFTs (parallel) ------------------
        let t3 = Instant::now();
        self.for_each_parallel(&mut rows_buf, |_, row| {
            self.col_fft.transform(row, Direction::Forward);
        });
        parallel += t3.elapsed().as_secs_f64();

        // --- E: gather X[p + R·q] = rows[p][q] (serial) -------------------
        let t4 = Instant::now();
        for (p, row) in rows_buf.iter().enumerate() {
            for (q, &v) in row.iter().enumerate() {
                data[p + r * q] = v;
            }
        }
        serial += t4.elapsed().as_secs_f64();

        StageTimes { serial, parallel }
    }

    /// Full-size twiddle `W_N^k` for any `k < N`, derived from the half
    /// table via `W_N^{k+N/2} = −W_N^k`.
    fn full_twiddle(&self, k: usize) -> CQ15 {
        let half = self.n / 2;
        if k < half {
            self.twiddles.forward(k)
        } else {
            let w = self.twiddles.forward(k - half);
            CQ15::new(-w.re, -w.im)
        }
    }

    /// Run `f` over every chunk, splitting across `self.workers` scoped
    /// threads (contiguous block partition — the scatter pattern a ring
    /// network favours).
    fn for_each_parallel<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
        let workers = self.workers.min(items.len()).max(1);
        if workers == 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = items.len().div_ceil(workers);
        crossbeam::scope(|scope| {
            for (w, block) in items.chunks_mut(chunk).enumerate() {
                let f = &f;
                scope.spawn(move |_| {
                    for (i, item) in block.iter_mut().enumerate() {
                        f(w * chunk + i, item);
                    }
                });
            }
        })
        .expect("worker thread panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{dequantize, quantize, reference_dft};

    fn test_signal(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                (
                    0.25 * (0.21 * x).sin() + 0.15 * (0.03 * x).cos(),
                    0.1 * (0.4 * x).sin(),
                )
            })
            .collect()
    }

    #[test]
    fn shape_is_near_square() {
        let f = ForkJoinFft::new(2048, 4);
        assert_eq!(f.shape(), (32, 64));
        let g = ForkJoinFft::new(256, 4);
        assert_eq!(g.shape(), (16, 16));
    }

    #[test]
    fn matches_serial_fixed_fft() {
        for &n in &[64usize, 256, 1024] {
            let signal = test_signal(n);
            let mut par = quantize(&signal);
            let mut ser = quantize(&signal);
            ForkJoinFft::new(n, 4).transform(&mut par);
            FixedFft::new(n).transform(&mut ser, Direction::Forward);
            for (i, (a, b)) in dequantize(&par).iter().zip(dequantize(&ser)).enumerate() {
                assert!(
                    (a.0 - b.0).abs() < 8e-3 && (a.1 - b.1).abs() < 8e-3,
                    "n={n} bin {i}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_dft() {
        let n = 512;
        let signal = test_signal(n);
        let mut par = quantize(&signal);
        ForkJoinFft::new(n, 3).transform(&mut par);
        let reference = reference_dft(&signal, Direction::Forward);
        for (i, (got, want)) in par.iter().zip(&reference).enumerate() {
            let (gr, gi) = got.to_f64();
            let (wr, wi) = (want.0 / n as f64, want.1 / n as f64);
            assert!(
                (gr - wr).abs() < 8e-3 && (gi - wi).abs() < 8e-3,
                "bin {i}: ({gr},{gi}) vs ({wr},{wi})"
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let n = 1024;
        let signal = test_signal(n);
        let mut one = quantize(&signal);
        let mut many = quantize(&signal);
        ForkJoinFft::new(n, 1).transform(&mut one);
        ForkJoinFft::new(n, 7).transform(&mut many);
        assert_eq!(one, many, "parallelism must be deterministic");
    }

    #[test]
    fn stage_times_are_reported() {
        let n = 2048;
        let mut data = quantize(&test_signal(n));
        let times = ForkJoinFft::new(n, 4).transform(&mut data);
        assert!(times.serial >= 0.0 && times.parallel >= 0.0);
        let f = times.serial_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "2^k ≥ 4")]
    fn rejects_tiny_sizes() {
        ForkJoinFft::new(2, 1);
    }
}
